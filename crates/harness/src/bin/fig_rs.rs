//! Regenerates Figures 6 and 7 (PRISM-RS vs ABDLOCK).
//!
//! Usage: `cargo run --release -p prism-harness --bin fig_rs [--quick] [--csv] [--zipf-sweep]`

use prism_harness::rs_exp::{self, RsExpConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let only_zipf = args.iter().any(|a| a == "--zipf-sweep");
    let cfg = if quick {
        RsExpConfig::quick()
    } else {
        RsExpConfig::paper()
    };
    let print = |t: &prism_harness::table::Table| {
        if csv {
            println!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    };
    if !only_zipf {
        let (t, peaks) = rs_exp::figure6(&cfg);
        print(&t);
        eprintln!(
            "peaks (Mops): PRISM-RS {:.3}  ABDLOCK {:.3}  ABDLOCK-sw {:.3}",
            peaks[0] / 1e6,
            peaks[1] / 1e6,
            peaks[2] / 1e6
        );
    }
    print(&rs_exp::figure7(&cfg));
}
