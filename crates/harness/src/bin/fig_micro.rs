//! Regenerates Figure 1, Figure 2, and the §2.1 motivation numbers.
//!
//! Usage: `cargo run --release -p prism-harness --bin fig_micro [--csv]`

use prism_harness::micro;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    for t in [
        micro::figure1(),
        micro::figure2(),
        micro::section2(),
        micro::chaining_ablation(),
    ] {
        if csv {
            println!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    }
}
