//! Microbenchmarks: Figure 1 (primitive latency by platform), Figure 2
//! (indirect read vs two RDMA reads across deployments), and the §2.1
//! motivation numbers.
//!
//! These are closed-form projections from the calibrated
//! [`CostModel`] — exactly how the paper produces its "PRISM HW
//! (proj.)" series (§4.3) — with the software platform also validated
//! against the DES by `netsim`'s tests.

use prism_simnet::latency::{CostModel, Deployment, Platform, Primitive};

use crate::table::{f2, Table};

/// All four platforms in Figure 1's legend order.
pub const PLATFORMS: [Platform; 4] = [
    Platform::RdmaHw,
    Platform::PrismSw,
    Platform::PrismBlueField,
    Platform::PrismHwProjected,
];

/// Generates Figure 1: latency of each primitive on each platform,
/// 512-byte payloads, direct 25 GbE link.
pub fn figure1() -> Table {
    let model = CostModel::fig1();
    let mut headers = vec!["primitive"];
    headers.extend(PLATFORMS.iter().map(|p| p.label()));
    let mut t = Table::new(
        "Figure 1: PRISM primitive latency (us), 512 B, direct link",
        &headers,
    );
    for prim in Primitive::ALL {
        let mut row = vec![prim.label().to_string()];
        for platform in PLATFORMS {
            let us = model.primitive_latency(platform, prim).as_micros_f64();
            // Plain READ/WRITE do not exist as "PRISM" ops on the
            // BlueField / HW projection rows in the paper's figure, but
            // their cost is well-defined; report it for completeness.
            row.push(f2(us));
        }
        t.row(&row);
    }
    t
}

/// Generates Figure 2: indirect read latency, 2x RDMA vs the PRISM
/// platforms, for rack / cluster / datacenter deployments.
pub fn figure2() -> Table {
    let mut t = Table::new(
        "Figure 2: indirect read latency (us) vs deployment",
        &[
            "deployment",
            "2x RDMA",
            "PRISM SW",
            "PRISM BlueField",
            "PRISM HW (proj)",
        ],
    );
    for d in [
        Deployment::Rack,
        Deployment::Cluster,
        Deployment::Datacenter,
    ] {
        let m = CostModel::fig1().with_deployment(d);
        // Two reads: pointer (8 B) then data (512 B).
        let two_rdma =
            m.rdma_onesided_rtt(8).as_micros_f64() + m.rdma_onesided_rtt(512).as_micros_f64();
        let row = vec![
            d.label().to_string(),
            f2(two_rdma),
            f2(
                m.primitive_latency(Platform::PrismSw, Primitive::IndirectRead)
                    .as_micros_f64(),
            ),
            f2(
                m.primitive_latency(Platform::PrismBlueField, Primitive::IndirectRead)
                    .as_micros_f64(),
            ),
            f2(
                m.primitive_latency(Platform::PrismHwProjected, Primitive::IndirectRead)
                    .as_micros_f64(),
            ),
        ];
        t.row(&row);
    }
    t
}

/// Generates the §2.1 motivation numbers: one-sided READ vs two-sided
/// eRPC at 512 B on the 40 GbE testbed, and the two-reads-vs-one-RPC
/// comparison.
pub fn section2() -> Table {
    let m = CostModel::testbed();
    let onesided = m.rdma_onesided_rtt(512).as_micros_f64();
    let rpc = m.rpc_rtt(512).as_micros_f64();
    let two_reads = m.rdma_onesided_rtt(8).as_micros_f64() + onesided;
    let mut t = Table::new(
        "Section 2.1: one-sided vs two-sided (us), 512 B, 40 GbE",
        &["operation", "latency_us", "paper_us"],
    );
    t.row(&["one-sided READ".into(), f2(onesided), "3.2".into()]);
    t.row(&["two-sided eRPC".into(), f2(rpc), "5.6".into()]);
    t.row(&["2x one-sided READ".into(), f2(two_reads), ">5.6".into()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shapes_hold() {
        let model = CostModel::fig1();
        for prim in Primitive::ALL {
            let rdma = model.primitive_latency(Platform::RdmaHw, prim);
            let sw = model.primitive_latency(Platform::PrismSw, prim);
            let bf = model.primitive_latency(Platform::PrismBlueField, prim);
            let hw = model.primitive_latency(Platform::PrismHwProjected, prim);
            assert!(sw > rdma, "{}: SW above RDMA", prim.label());
            assert!(bf > sw, "{}: BlueField slowest", prim.label());
            assert!(
                hw >= rdma && hw < sw,
                "{}: HW between RDMA and SW",
                prim.label()
            );
        }
        // Render for smoke.
        assert!(figure1().render().contains("Enhanced-CAS"));
    }

    #[test]
    fn figure2_prism_wins_everywhere_and_gap_grows() {
        let t = figure2();
        let csv = t.to_csv();
        let mut prev_gap = 0.0;
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let two: f64 = cells[1].parse().unwrap();
            let sw: f64 = cells[2].parse().unwrap();
            assert!(sw < two, "PRISM SW must beat 2x RDMA ({line})");
            let gap = two - sw;
            assert!(gap > prev_gap, "gap must grow with network latency");
            prev_gap = gap;
        }
    }

    #[test]
    fn section2_matches_paper_numbers() {
        let s = section2().render();
        assert!(s.contains("one-sided READ"));
        let m = CostModel::testbed();
        assert!((m.rdma_onesided_rtt(512).as_micros_f64() - 3.2).abs() < 0.3);
        assert!((m.rpc_rtt(512).as_micros_f64() - 5.6).abs() < 0.4);
    }
}

/// Ablation: what operation chaining (§3.4) is worth. Each application
/// chain is compared against issuing the same primitives as separate
/// round trips on the software data plane.
pub fn chaining_ablation() -> Table {
    let m = CostModel::testbed();
    let mut t = Table::new(
        "Ablation: chained vs unchained round trips (us, software PRISM)",
        &["composite", "ops", "chained_us", "unchained_us", "saved_us"],
    );
    // One software round trip carrying an n-op chain, with a
    // `payload`-byte response.
    let sw_rtt = |ops: u64, payload: u64| -> f64 {
        let transport = m.rdma_onesided_rtt(payload).as_micros_f64() - m.pcie_rt.as_micros_f64()
            + m.host_dma.as_micros_f64();
        // Dispatch ~2.35 us + 0.15 us per op (netsim's sw_latency).
        transport + 2.35 + 0.15 * ops as f64
    };
    let rows: [(&str, u64, u64); 3] = [
        // PRISM-KV install: WRITE bound + ALLOCATE + CAS + readback (§6.1).
        ("KV PUT install", 4, 24),
        // PRISM-RS write phase: WRITE tag + ALLOCATE + CAS + readback (§7.3).
        ("RS write phase", 4, 24),
        // PRISM-TX commit, one key (§8.2).
        ("TX commit (1 key)", 4, 24),
    ];
    for (name, ops, resp) in rows {
        let chained = sw_rtt(ops, resp);
        let unchained: f64 = (0..ops).map(|_| sw_rtt(1, resp / ops)).sum();
        t.row(&[
            name.to_string(),
            ops.to_string(),
            f2(chained),
            f2(unchained),
            f2(unchained - chained),
        ]);
    }
    // Indirection ablation: bounded indirect READ vs pointer READ + data
    // READ (the Figure 2 comparison restated as an ablation).
    let indirect = m
        .primitive_latency(Platform::PrismSw, Primitive::IndirectRead)
        .as_micros_f64();
    let two_reads = sw_rtt(1, 8) + sw_rtt(1, 512);
    t.row(&[
        "KV GET (indirect vs 2 reads)".into(),
        2.to_string(),
        f2(indirect),
        f2(two_reads),
        f2(two_reads - indirect),
    ]);
    t
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn chaining_always_saves_round_trips() {
        let t = chaining_ablation();
        for line in t.to_csv().lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            let chained: f64 = c[2].parse().unwrap();
            let unchained: f64 = c[3].parse().unwrap();
            assert!(
                unchained > chained * 1.8,
                "{}: chaining must save at least ~half the cost ({} vs {})",
                c[0],
                chained,
                unchained
            );
        }
    }
}
