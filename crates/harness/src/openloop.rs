//! Open-loop load engine: aggregate actors multiplexing many logical
//! clients, with coordinated-omission-free latency recording.
//!
//! The closed-loop drivers in [`crate::netsim`] model one actor per
//! client, each issuing its next operation only after the previous
//! reply lands. That is the right model for the paper's
//! throughput-latency figures, but it cannot ask the latency-under-load
//! question honestly: a stalled server throttles a closed-loop client's
//! offered load, so the stall suppresses exactly the samples that would
//! have recorded it (*coordinated omission*), and one simulator actor
//! per client caps the population long before the million-client scale
//! the arrival math needs.
//!
//! This module fixes both:
//!
//! * **Open-loop arrivals.** A seeded [`ArrivalSpec`] (Poisson or
//!   trace replay, from [`prism_workload::openloop`]) fixes request
//!   arrival instants independently of service times. Latency is
//!   measured from the *intended* arrival instant: when every logical
//!   client is in flight, a new arrival queues its intended time, and
//!   the operation it eventually becomes still charges the full wait.
//! * **Aggregate actors.** One [`OpenLoopActor`] multiplexes up to
//!   `logical_clients / actors` concurrently outstanding logical
//!   clients as *slots* — lazily instantiated protocol adapters — so a
//!   run sustains 10⁵–10⁶ logical clients with a handful of simulator
//!   actors and an event count proportional to traffic, not population.
//!
//! Protocol adapters are reused verbatim: a slot drives the same
//! [`ProtoAdapter`] state machines the closed-loop drivers use, against
//! unmodified [`ServerActor`]s, and the full fault fabric (timeouts,
//! drops, partitions, jitter, in-flight corruption, server crash
//! windows) applies per send exactly as in [`ClientActor::dispatch`].
//! The one exclusion is *client* crash windows: a logical client has no
//! process of its own inside an aggregate, so plans with client
//! restart windows are rejected up front.
//!
//! Adapters tag replies with tags of their own choosing, unique only
//! within one adapter (and they use the full 64-bit space), so the
//! aggregate translates: every send gets a fresh per-actor wire tag,
//! and a routing map carries `wire tag → (slot, adapter tag)` until the
//! reply or its timeout consumes it. Determinism is preserved end to
//! end — same seed, same arrival schedule, same replies, bit-identical
//! [`OpenLoopResult`].

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use prism_core::msg::{Reply, Request};
use prism_core::PrismServer;
use prism_rdma::RdmaError;
use prism_simnet::engine::{Actor, ActorId, Context, Simulation};
use prism_simnet::estimator::RttEstimator;
use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_workload::openloop::{ArrivalSpec, Arrivals};

use crate::netsim::{
    pre_delay, AdapterStep, Outbound, ProtoAdapter, RecoveryHooks, ServerActor, SimMsg, VerbPath,
};

/// Shared lazily-invoked adapter factory: slot `i` (globally numbered
/// across aggregates) gets `factory(i)` the first time it is needed.
/// `Rc<RefCell<…>>` because every aggregate actor of a run shares one
/// factory, and the simulation is single-threaded by construction.
pub type AdapterFactory = Rc<RefCell<dyn FnMut(usize) -> Box<dyn ProtoAdapter>>>;

/// Parameters of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// The global arrival process, partitioned across aggregates.
    pub arrivals: ArrivalSpec,
    /// Total logical clients (the in-flight concurrency cap, spread
    /// across aggregates). Arrivals beyond the cap queue their intended
    /// times instead of being dropped or delayed silently.
    pub logical_clients: usize,
    /// Optional tighter cap on concurrently in-flight operations
    /// (`0` = no extra cap). Protocol clients hold a per-connection
    /// on-NIC scratch slot, and the paper's 256 KB scratch region
    /// bounds one server to 4096 connections (§4.2) — so an experiment
    /// multiplexing 10⁵⁺ logical clients caps its live slots at the
    /// connection budget and lets the backlog charge the wait, exactly
    /// as a real client host multiplexes user sessions over a bounded
    /// connection pool.
    pub max_inflight: usize,
    /// Aggregate simulator actors multiplexing the logical clients.
    pub actors: usize,
    /// Warm-up (runs the arrival process, metrics discarded).
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Run seed: arrival schedules, adapter RNG streams, fault streams.
    pub seed: u64,
    /// Fault plan (client crash windows are rejected; everything else
    /// applies as in the closed-loop drivers).
    pub faults: FaultPlan,
}

impl OpenLoopConfig {
    /// A small fixed-seed smoke configuration: Poisson arrivals at
    /// `rate_per_sec`, 256 logical clients on 4 aggregates, 100 µs
    /// warm-up, 2 ms measurement.
    pub fn smoke(rate_per_sec: f64, seed: u64) -> Self {
        OpenLoopConfig {
            arrivals: ArrivalSpec::Poisson { rate_per_sec },
            logical_clients: 256,
            max_inflight: 0,
            actors: 4,
            warmup: SimDuration::micros(100),
            measure: SimDuration::millis(2),
            seed,
            faults: FaultPlan::default(),
        }
    }
}

/// What one open-loop run measured. `PartialEq` is deliberate: the
/// determinism gate compares whole results across replays bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopResult {
    /// Aggregate actors.
    pub actors: usize,
    /// Logical-client concurrency cap.
    pub logical_clients: usize,
    /// Operations completed successfully inside the window.
    pub completed: u64,
    /// Completed operations per second.
    pub tput_ops: f64,
    /// Mean latency from intended arrival, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 99th percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th percentile latency, µs.
    pub p999_us: f64,
    /// Maximum latency, µs.
    pub max_us: f64,
    /// Failed/aborted operations.
    pub failed: u64,
    /// Request timeouts that synthesized error replies.
    pub timeouts: u64,
    /// Adapter-level retries.
    pub retries: u64,
    /// Backoff events.
    pub backoffs: u64,
    /// Operations abandoned after exhausting their retry budget.
    pub giveups: u64,
    /// Arrivals that found every slot busy and queued their intended
    /// time (the open-loop overload signal).
    pub backlogged: u64,
    /// Messages the fault plan dropped.
    pub drops: u64,
    /// Operations abandoned against their retry-deadline budget
    /// (overload shedding; counted in `failed` too).
    pub shed: u64,
    /// Requests the servers refused at admission (typed `Busy` NACKs,
    /// counted at issuance so dropped NACK replies still count).
    pub busy_nacks: u64,
}

/// One multiplexed logical client currently (or lately) in flight.
struct Slot {
    adapter: Box<dyn ProtoAdapter>,
    /// Intended arrival instant of the operation in flight — the
    /// latency clock's origin, which predates the operation's actual
    /// start whenever the arrival had to queue.
    intended: SimTime,
    /// When the operation actually started (slot acquired). The
    /// deadline-aware retry budget clocks from here, not from
    /// `intended`: backlog queueing is the load's fault, not the op's,
    /// and must not trigger sheds by itself.
    started: SimTime,
    /// See [`ClientActor`]'s field of the same name.
    corrupt_op: bool,
    /// Consecutive transport retries of the op in flight, driving the
    /// adaptive backoff schedule.
    op_retries: u32,
}

/// An aggregate open-loop actor: owns this partition's arrival stream
/// and a pool of logical-client slots.
pub struct OpenLoopActor {
    arrivals: Arrivals,
    factory: AdapterFactory,
    slots: Vec<Slot>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Concurrency cap for this aggregate (slots are created lazily up
    /// to it, so the high-water mark, not the cap, costs memory).
    max_slots: usize,
    /// Global slot-number base, so factories see distinct indices
    /// across aggregates.
    slot_base: usize,
    /// Intended arrival instants waiting for a slot, oldest first.
    backlog: VecDeque<SimTime>,
    servers: Vec<ActorId>,
    model: CostModel,
    rng: SimRng,
    /// Aggregate index — the identity fault-plan partitions refer to.
    index: usize,
    faults: FaultPlan,
    fault_rng: SimRng,
    corrupt_rng: SimRng,
    /// Wire tag → (slot, adapter tag). Adapters use the full 64-bit tag
    /// space each, so the aggregate cannot namespace their tags; it
    /// issues fresh wire tags per send and routes replies back.
    routes: HashMap<u64, (u32, u64)>,
    /// Wire tags awaiting a reply under a fault plan, stamped with
    /// their send attempt (see [`ClientActor::outstanding`]).
    outstanding: HashMap<u64, u64>,
    /// Consumed `(wire tag, attempt)` pairs (see
    /// [`ClientActor::last_done`]): dedups fault-plan stragglers so each
    /// stale reply reaches [`ProtoAdapter::on_stale_reply`] exactly
    /// once. Never cleared.
    last_done: HashMap<u64, u64>,
    /// Routes parked by a timeout: wire tag → `(slot, adapter tag)`,
    /// kept so the real reply, if it straggles in later, can still be
    /// harvested by the adapter that sent the request. Entries for
    /// requests the fault plan dropped outright are never consumed;
    /// like `last_done`, growth is bounded by the timeout count.
    orphans: HashMap<u64, (u32, u64)>,
    next_tag: u64,
    attempt_ctr: u64,
    /// Highest incarnation seen per server (pre-crash stragglers are
    /// fenced, as in the closed-loop client).
    seen_inc: Vec<u64>,
    /// Windowed-quantile RTT tracker shared by this aggregate's slots,
    /// feeding the adaptive timeout and backoff when the plan's tail
    /// policy arms them. (Hedging is a closed-loop client policy; the
    /// aggregate's overload story is admission control + shedding.)
    estimator: RttEstimator,
    /// Send instant per `(wire tag, attempt)` while the adaptive policy
    /// is active; live completions become RTT samples, timed-out
    /// attempts never do (Karn's rule).
    sent_at: HashMap<(u64, u64), SimTime>,
}

impl OpenLoopActor {
    /// Creates one aggregate. `slot_base` numbers this aggregate's
    /// slots globally for the factory; `index` is the aggregate's
    /// client index under the fault plan.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        arrivals: Arrivals,
        factory: AdapterFactory,
        max_slots: usize,
        slot_base: usize,
        servers: Vec<ActorId>,
        model: CostModel,
        rng: SimRng,
        index: usize,
        faults: FaultPlan,
    ) -> Self {
        let fault_rng = SimRng::new(faults.seed ^ 0xC0FF_EE00 ^ ((index as u64 + 1) << 16));
        let corrupt_rng = SimRng::new(faults.seed ^ 0xB17F_C11E ^ ((index as u64 + 1) << 16));
        let seen_inc = vec![0; servers.len()];
        OpenLoopActor {
            arrivals,
            factory,
            slots: Vec::new(),
            free: Vec::new(),
            max_slots,
            slot_base,
            backlog: VecDeque::new(),
            servers,
            model,
            rng,
            index,
            faults,
            fault_rng,
            corrupt_rng,
            routes: HashMap::new(),
            outstanding: HashMap::new(),
            last_done: HashMap::new(),
            orphans: HashMap::new(),
            next_tag: 0,
            attempt_ctr: 0,
            seen_inc,
            estimator: RttEstimator::p99(),
            sent_at: HashMap::new(),
        }
    }

    /// The per-request timeout (see `ClientActor::effective_timeout`).
    fn effective_timeout(&self) -> SimDuration {
        if !self.faults.tail.adaptive_timeout {
            return self.faults.timeout;
        }
        let rt = pre_delay(&self.model) + crate::netsim::post_delay(&self.model);
        self.estimator
            .timeout(4, rt * 2, self.faults.timeout * 8, self.faults.timeout)
    }

    fn schedule_next_arrival(&mut self, ctx: &mut Context<'_, SimMsg>) {
        if let Some(ns) = self.arrivals.next_arrival() {
            let me = ctx.self_id();
            ctx.send_at(me, SimTime::from_nanos(ns), SimMsg::Arrival);
        }
    }

    /// A free slot, recycling first, then instantiating up to the cap.
    fn acquire_slot(&mut self) -> Option<u32> {
        if let Some(s) = self.free.pop() {
            return Some(s);
        }
        if self.slots.len() < self.max_slots {
            let id = self.slots.len();
            let adapter = (self.factory.borrow_mut())(self.slot_base + id);
            self.slots.push(Slot {
                adapter,
                intended: SimTime::ZERO,
                started: SimTime::ZERO,
                corrupt_op: false,
                op_retries: 0,
            });
            return Some(id as u32);
        }
        None
    }

    /// Starts one logical operation on `slot`, clocked from `intended`.
    fn start_op(&mut self, slot: u32, intended: SimTime, ctx: &mut Context<'_, SimMsg>) {
        let s = &mut self.slots[slot as usize];
        s.intended = intended;
        s.started = ctx.now();
        s.corrupt_op = false;
        s.op_retries = 0;
        s.adapter.note_time(ctx.now());
        let sends = self.slots[slot as usize].adapter.start(&mut self.rng);
        self.dispatch(slot, sends, ctx);
    }

    /// The operation on `slot` is over: recycle the slot, draining the
    /// backlog first — a queued arrival starts *now* but keeps its
    /// original intended time, which is what makes the recorded latency
    /// coordination-free.
    fn release_slot(&mut self, slot: u32, ctx: &mut Context<'_, SimMsg>) {
        match self.backlog.pop_front() {
            Some(intended) => self.start_op(slot, intended, ctx),
            None => self.free.push(slot),
        }
    }

    /// Sends one slot's outbound traffic, applying the same fault legs
    /// as [`ClientActor::dispatch`], with wire-tag translation.
    fn dispatch(&mut self, slot: u32, sends: Vec<Outbound>, ctx: &mut Context<'_, SimMsg>) {
        let me = ctx.self_id();
        let armed = !self.faults.is_noop();
        for out in sends {
            let dst = self.servers[out.server];
            let mut pre = pre_delay(&self.model);
            let mut attempt = 0;
            let mut corrupt = false;
            let wire_tag = self.next_tag;
            self.next_tag += 1;
            if !out.background {
                self.routes.insert(wire_tag, (slot, out.tag));
            }
            if armed {
                // Arm the timeout before deciding the request's fate: a
                // dropped or partitioned request must still time out.
                if !out.background {
                    self.attempt_ctr += 1;
                    attempt = self.attempt_ctr;
                    self.outstanding.insert(wire_tag, attempt);
                    ctx.send_in(
                        me,
                        pre + self.effective_timeout(),
                        SimMsg::Timeout {
                            tag: wire_tag,
                            attempt,
                        },
                    );
                    if self.faults.tail.adaptive_timeout {
                        self.sent_at.insert((wire_tag, attempt), ctx.now());
                    }
                }
                if self.faults.partitioned(self.index, out.server, ctx.now()) {
                    ctx.metrics().add("fault_drops", 1);
                    continue;
                }
                if self.faults.drop_prob > 0.0 && self.fault_rng.gen_bool(self.faults.drop_prob) {
                    ctx.metrics().add("fault_drops", 1);
                    continue;
                }
                if self.faults.jitter_ns > 0 {
                    pre += SimDuration::from_nanos(self.fault_rng.gen_range(self.faults.jitter_ns));
                }
                if self.faults.flip_req_prob > 0.0
                    && self.corrupt_rng.gen_bool(self.faults.flip_req_prob)
                {
                    // In-flight request corruption, same construction
                    // as the closed-loop leg: flip one seeded bit of
                    // the real encoded frame, verify the CRCs catch it.
                    ctx.metrics().add("fault_corrupt_injected", 1);
                    ctx.metrics().add("fault_corrupt_detected", 1);
                    if let Ok(mut bytes) = out.req.encode_epoch(out.epoch) {
                        let pos = self.corrupt_rng.gen_range(bytes.len() as u64 * 8);
                        bytes[(pos / 8) as usize] ^= 1 << (pos % 8);
                        debug_assert!(
                            Request::decode_epoch(&bytes).is_err(),
                            "a single-bit flip must not survive the frame CRCs"
                        );
                    }
                    corrupt = true;
                }
            }
            ctx.send_in(
                dst,
                pre,
                SimMsg::Req {
                    from: me,
                    tag: wire_tag,
                    attempt,
                    req: out.req,
                    respond: !out.background,
                    corrupt,
                    epoch: out.epoch,
                },
            );
        }
    }

    /// Routes a reply (real or synthesized) to its slot's adapter and
    /// acts on the verdict.
    fn feed_reply(&mut self, wire_tag: u64, reply: Reply, ctx: &mut Context<'_, SimMsg>) {
        let Some((slot, inner)) = self.routes.remove(&wire_tag) else {
            // Unarmed runs deliver every reply exactly once, so a
            // missing route only happens for fault-plan duplicates that
            // slipped past the attempt dedup (never, by construction).
            return;
        };
        let me = ctx.self_id();
        let s = &mut self.slots[slot as usize];
        if matches!(reply, Reply::Verb(Err(RdmaError::Corrupt))) {
            s.corrupt_op = true;
        }
        s.adapter.note_time(ctx.now());
        let step = s.adapter.on_reply(inner, reply);
        match step {
            AdapterStep::Wait(sends) => self.dispatch(slot, sends, ctx),
            AdapterStep::Done {
                sends,
                client_compute,
                failed,
            } => {
                self.dispatch(slot, sends, ctx);
                let s = &mut self.slots[slot as usize];
                if s.corrupt_op {
                    s.corrupt_op = false;
                    ctx.metrics().add(
                        if failed {
                            "fault_corrupt_aborted"
                        } else {
                            "fault_corrupt_repaired"
                        },
                        1,
                    );
                }
                let end = ctx.now() + client_compute;
                if failed {
                    ctx.metrics().add("failed", 1);
                } else {
                    // The open-loop latency: completion minus *intended*
                    // arrival, so queueing behind a full slot pool (or a
                    // stalled server) is charged to the sample.
                    let latency = end.since(self.slots[slot as usize].intended);
                    ctx.metrics().record("lat", latency);
                    ctx.metrics().add("ops", 1);
                }
                if client_compute == SimDuration::ZERO {
                    self.release_slot(slot, ctx);
                } else {
                    ctx.send_at(
                        me,
                        end,
                        SimMsg::OlKick {
                            slot,
                            resume: false,
                        },
                    );
                }
            }
            AdapterStep::Backoff { sends, wait } => {
                self.dispatch(slot, sends, ctx);
                ctx.metrics().add("backoffs", 1);
                ctx.send_in(me, wait, SimMsg::OlKick { slot, resume: true });
            }
            AdapterStep::Retry { sends, mut wait } => {
                self.dispatch(slot, sends, ctx);
                // Deadline-aware load shedding, clocked from the op's
                // *actual* start (`started`, not `intended`): an open
                // rate pushing the backlog out does not make ops exceed
                // their retry budget before they even begin.
                let deadline = self.faults.tail.retry_deadline;
                if deadline > SimDuration::ZERO
                    && ctx.now().since(self.slots[slot as usize].started) >= deadline
                {
                    let sends = self.slots[slot as usize].adapter.abandon();
                    self.dispatch(slot, sends, ctx);
                    let s = &mut self.slots[slot as usize];
                    if s.corrupt_op {
                        s.corrupt_op = false;
                        ctx.metrics().add("fault_corrupt_aborted", 1);
                    }
                    ctx.metrics().add("shed", 1);
                    ctx.metrics().add("failed", 1);
                    self.release_slot(slot, ctx);
                    return;
                }
                ctx.metrics().add("retries", 1);
                self.slots[slot as usize].op_retries += 1;
                if self.faults.tail.adaptive_timeout {
                    wait = self
                        .estimator
                        .backoff(self.slots[slot as usize].op_retries, wait);
                }
                if !self.faults.is_noop() {
                    // Seeded retry jitter, same stream discipline as
                    // the closed-loop client.
                    let span = wait.as_nanos().max(2) / 2;
                    wait += SimDuration::from_nanos(self.fault_rng.gen_range(span));
                }
                ctx.send_in(me, wait, SimMsg::OlKick { slot, resume: true });
            }
            AdapterStep::GiveUp { sends } => {
                self.dispatch(slot, sends, ctx);
                let s = &mut self.slots[slot as usize];
                if s.corrupt_op {
                    s.corrupt_op = false;
                    ctx.metrics().add("fault_corrupt_aborted", 1);
                }
                ctx.metrics().add("giveups", 1);
                ctx.metrics().add("failed", 1);
                self.release_slot(slot, ctx);
            }
        }
    }
}

impl Actor<SimMsg> for OpenLoopActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SimMsg>) {
        self.schedule_next_arrival(ctx);
    }

    fn on_message(&mut self, msg: SimMsg, ctx: &mut Context<'_, SimMsg>) {
        match msg {
            SimMsg::Arrival => {
                let now = ctx.now();
                match self.acquire_slot() {
                    Some(slot) => self.start_op(slot, now, ctx),
                    None => {
                        // Every logical client is in flight: queue the
                        // intended instant. The eventual operation's
                        // latency clock starts here, not when a slot
                        // frees up.
                        self.backlog.push_back(now);
                        ctx.metrics().add("ol_backlogged", 1);
                    }
                }
                self.schedule_next_arrival(ctx);
            }
            SimMsg::OlKick { slot, resume } => {
                if resume {
                    let s = &mut self.slots[slot as usize];
                    s.adapter.note_time(ctx.now());
                    let sends = self.slots[slot as usize].adapter.resume();
                    self.dispatch(slot, sends, ctx);
                } else {
                    // Trailing client compute finished; the latency was
                    // recorded when the adapter reported Done.
                    self.release_slot(slot, ctx);
                }
            }
            SimMsg::Reply {
                tag,
                attempt,
                server,
                inc,
                reply,
            } => {
                if !self.faults.is_noop() {
                    // Asymmetric (reply-leg) partition: the request got
                    // through but the answer cannot. Checked before
                    // fencing/dedup so the dropped reply leaves no trace.
                    if self.faults.injects_gray()
                        && self.faults.reply_partitioned(self.index, server, ctx.now())
                    {
                        ctx.metrics().add("fault_drops", 1);
                        return;
                    }
                    if inc < self.seen_inc[server] {
                        ctx.metrics().add("fault_fenced", 1);
                        return;
                    }
                    self.seen_inc[server] = inc;
                    if self.outstanding.get(&tag) != Some(&attempt) {
                        // A straggler whose timeout already fired. Hand
                        // it to the adapter that sent it, exactly once,
                        // so server-side resources named in the reply
                        // (an orphaned spare buffer, a displaced block)
                        // can be reclaimed instead of leaking.
                        if self.last_done.get(&tag) == Some(&attempt) {
                            return;
                        }
                        self.last_done.insert(tag, attempt);
                        if let Some((slot, inner)) = self.orphans.remove(&tag) {
                            ctx.metrics().add("stale_harvested", 1);
                            let s = &mut self.slots[slot as usize];
                            s.adapter.note_time(ctx.now());
                            let sends = s.adapter.on_stale_reply(inner, server, reply);
                            self.dispatch(slot, sends, ctx);
                        }
                        return;
                    }
                    self.outstanding.remove(&tag);
                    self.last_done.insert(tag, attempt);
                    // Only live completions feed the estimator (Karn's
                    // rule): timed-out attempts had their sample dropped.
                    if self.faults.tail.adaptive_timeout {
                        if let Some(sent) = self.sent_at.remove(&(tag, attempt)) {
                            self.estimator.observe(ctx.now().since(sent));
                        }
                    }
                }
                self.feed_reply(tag, reply, ctx);
            }
            SimMsg::Timeout { tag, attempt } => {
                if self.outstanding.get(&tag) != Some(&attempt) {
                    return;
                }
                self.outstanding.remove(&tag);
                self.sent_at.remove(&(tag, attempt));
                ctx.metrics().add("timeouts", 1);
                // Park the route (feed_reply consumes it) so the real
                // reply, if it eventually lands, is harvested above.
                if let Some(&route) = self.routes.get(&tag) {
                    self.orphans.insert(tag, route);
                }
                self.feed_reply(tag, Reply::Verb(Err(RdmaError::ReceiverNotReady)), ctx);
            }
            SimMsg::Kick { .. }
            | SimMsg::Restart
            | SimMsg::Req { .. }
            | SimMsg::Sweep
            | SimMsg::Control
            | SimMsg::Rot(_)
            | SimMsg::DiskRot(_)
            | SimMsg::Hedge { .. } => {
                unreachable!("open-loop aggregates receive only replies and their own timers")
            }
        }
    }
}

/// Runs one open-loop experiment over the given servers: builds the
/// aggregates, partitions the arrival process, runs warm-up then the
/// measurement window, and extracts the CO-free latency distribution.
///
/// # Panics
///
/// Panics if the config is degenerate (zero actors, fewer logical
/// clients than actors) or the fault plan contains client crash
/// windows, which aggregates cannot model.
pub fn run_open_loop(
    servers: &[Arc<PrismServer>],
    model: &CostModel,
    verb_path: VerbPath,
    cfg: &OpenLoopConfig,
    factory: AdapterFactory,
    hooks: &RecoveryHooks,
) -> OpenLoopResult {
    assert!(cfg.actors > 0, "open-loop run needs at least one aggregate");
    assert!(
        cfg.logical_clients >= cfg.actors,
        "fewer logical clients ({}) than aggregates ({})",
        cfg.logical_clients,
        cfg.actors
    );
    cfg.faults.validate(servers.len(), cfg.actors);
    for a in 0..cfg.actors {
        assert!(
            cfg.faults.client_restarts(a).is_empty(),
            "open-loop aggregates do not model client crash windows"
        );
    }
    let mut sim: Simulation<SimMsg> = Simulation::new(cfg.seed);
    let server_ids: Vec<ActorId> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            sim.add_actor(Box::new(ServerActor::new(
                Arc::clone(s),
                model.clone(),
                verb_path,
                i,
                cfg.faults.clone(),
                hooks.clone(),
            )))
        })
        .collect();
    let inflight = if cfg.max_inflight == 0 {
        cfg.logical_clients
    } else {
        cfg.logical_clients.min(cfg.max_inflight)
    }
    .max(cfg.actors);
    let per = inflight / cfg.actors;
    let extra = inflight % cfg.actors;
    let mut slot_base = 0;
    for i in 0..cfg.actors {
        let max_slots = per + usize::from(i < extra);
        let arrivals = cfg.arrivals.build(i, cfg.actors, cfg.seed);
        let rng = SimRng::new(cfg.seed ^ ((i as u64 + 1) << 20));
        sim.add_actor(Box::new(OpenLoopActor::new(
            arrivals,
            Rc::clone(&factory),
            max_slots,
            slot_base,
            server_ids.clone(),
            model.clone(),
            rng,
            i,
            cfg.faults.clone(),
        )));
        slot_base += max_slots;
    }
    sim.run_for(cfg.warmup);
    sim.metrics_mut().reset();
    if let Some(integrity) = &hooks.integrity {
        integrity.reset();
    }
    if let Some(durable) = &hooks.durable {
        durable.reset();
    }
    sim.run_for(cfg.measure);
    let metrics = sim.metrics();
    let ops = metrics.counter("ops");
    let (mean, p50, p99, p999, max) = metrics
        .histogram("lat")
        .map(|h| {
            (
                h.mean_micros(),
                h.quantile_micros(0.50),
                h.quantile_micros(0.99),
                h.quantile_micros(0.999),
                h.max_micros(),
            )
        })
        .unwrap_or((0.0, 0.0, 0.0, 0.0, 0.0));
    OpenLoopResult {
        actors: cfg.actors,
        logical_clients: cfg.logical_clients,
        completed: ops,
        tput_ops: ops as f64 / cfg.measure.as_micros_f64() * 1e6,
        mean_us: mean,
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
        max_us: max,
        failed: metrics.counter("failed"),
        timeouts: metrics.counter("timeouts"),
        retries: metrics.counter("retries"),
        backoffs: metrics.counter("backoffs"),
        giveups: metrics.counter("giveups"),
        backlogged: metrics.counter("ol_backlogged"),
        drops: metrics.counter("fault_drops"),
        shed: metrics.counter("shed"),
        busy_nacks: metrics.counter("busy_nacks"),
    }
}

/// Per-server connection budget the experiment sweeps respect when
/// capping in-flight slots: the 256 KB on-NIC scratch region holds 4096
/// connections at 64 B each (§4.2); a margin is left for preload and
/// bookkeeping connections the experiments open outside the engine.
pub const CONNECTION_BUDGET: usize = 3_500;

/// Knobs for the per-system latency-under-load sweeps the experiment
/// modules expose alongside their closed-loop figures.
#[derive(Debug, Clone)]
pub struct OpenLoopKnobs {
    /// Offered arrival rates to sweep (requests per simulated second).
    pub rates_per_sec: Vec<f64>,
    /// Logical-client concurrency cap.
    pub logical_clients: usize,
    /// In-flight cap (see [`OpenLoopConfig::max_inflight`]). The
    /// experiment sweeps clamp this to the paper's per-server on-NIC
    /// connection budget.
    pub max_inflight: usize,
    /// Aggregate actors.
    pub actors: usize,
    /// Warm-up per point.
    pub warmup: SimDuration,
    /// Measurement per point.
    pub measure: SimDuration,
}

impl OpenLoopKnobs {
    /// Full-scale sweep: 10⁵ logical clients, rates climbing past the
    /// single-server saturation point (the 100 Gbps link serializes
    /// ~24 M 512-byte replies per second) so the curve's knee is
    /// visible.
    pub fn paper() -> Self {
        OpenLoopKnobs {
            rates_per_sec: vec![1e6, 4e6, 8e6, 16e6, 22e6, 26e6],
            logical_clients: 100_000,
            max_inflight: CONNECTION_BUDGET,
            actors: 16,
            warmup: SimDuration::millis(1),
            measure: SimDuration::millis(10),
        }
    }

    /// Slots that can actually be live at once: the logical-client
    /// population clamped by the in-flight cap. Experiment sweeps size
    /// server-side spare provisioning (and thus adapter connections)
    /// from this, not from the population.
    pub fn live_slots(&self) -> usize {
        if self.max_inflight == 0 {
            self.logical_clients
        } else {
            self.logical_clients.min(self.max_inflight)
        }
    }

    /// Reduced sweep for smoke tests.
    pub fn quick() -> Self {
        OpenLoopKnobs {
            rates_per_sec: vec![1e5, 5e5],
            logical_clients: 4_096,
            max_inflight: CONNECTION_BUDGET,
            actors: 4,
            warmup: SimDuration::micros(200),
            measure: SimDuration::millis(2),
        }
    }
}

/// Sweeps `run_open_loop` over the knobs' arrival rates against ONE
/// server set, one [`OpenLoopResult`] per rate, reseeding each point
/// from the base seed and the rate index.
///
/// The whole sweep reuses the caller's system: each point can lazily
/// open up to the in-flight cap's worth of connections, and the on-NIC
/// connection table recycles slots on close, so between points the
/// sweep simply hangs up every connection
/// ([`PrismServer::close_all_connections`]) and the next point's
/// adapters (a fresh factory per point, from `make_factory`) reopen
/// from the recycled pool. Generation tags fence any reply still
/// addressed to a hung-up connection. Before slot recycling this
/// required a cold-started system per point — a six-point sweep at the
/// 3 500-connection cap would otherwise exhaust the 4096-slot scratch
/// region mid-sweep.
pub fn sweep_rates<F>(
    servers: &[Arc<PrismServer>],
    model: &CostModel,
    verb_path: VerbPath,
    knobs: &OpenLoopKnobs,
    seed: u64,
    faults: &FaultPlan,
    mut make_factory: F,
) -> Vec<(f64, OpenLoopResult)>
where
    F: FnMut() -> AdapterFactory,
{
    knobs
        .rates_per_sec
        .iter()
        .enumerate()
        .map(|(k, &rate)| {
            let factory = make_factory();
            let cfg = OpenLoopConfig {
                arrivals: ArrivalSpec::Poisson { rate_per_sec: rate },
                logical_clients: knobs.logical_clients,
                max_inflight: knobs.max_inflight,
                actors: knobs.actors,
                warmup: knobs.warmup,
                measure: knobs.measure,
                seed: seed ^ ((k as u64 + 1) << 40),
                faults: faults.clone(),
            };
            let point = run_open_loop(
                servers,
                model,
                verb_path,
                &cfg,
                factory,
                &RecoveryHooks::default(),
            );
            for s in servers {
                s.close_all_connections();
            }
            (rate, point)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::builder::ops;
    use prism_rdma::region::AccessFlags;

    /// An adapter issuing one plain chain READ per op.
    struct ReadAdapter {
        addr: u64,
        rkey: u32,
    }

    impl ProtoAdapter for ReadAdapter {
        fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
            vec![Outbound {
                server: 0,
                tag: u64::MAX - 1, // full-width tags must round-trip
                req: Request::Chain(vec![ops::read(self.addr, 512, self.rkey)]),
                background: false,
                epoch: 0,
            }]
        }

        fn resume(&mut self) -> Vec<Outbound> {
            unreachable!()
        }

        fn on_reply(&mut self, tag: u64, reply: Reply) -> AdapterStep {
            assert_eq!(tag, u64::MAX - 1);
            match reply {
                Reply::Chain(r) => assert_eq!(r[0].data.len(), 512),
                Reply::Verb(Err(_)) => {
                    return AdapterStep::Done {
                        sends: Vec::new(),
                        client_compute: SimDuration::ZERO,
                        failed: true,
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
            AdapterStep::Done {
                sends: Vec::new(),
                client_compute: SimDuration::ZERO,
                failed: false,
            }
        }
    }

    fn test_server() -> (Arc<PrismServer>, u64, u32) {
        let s = Arc::new(PrismServer::new(1 << 20));
        let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
        (s, addr, rkey.0)
    }

    fn read_factory(addr: u64, rkey: u32) -> AdapterFactory {
        Rc::new(RefCell::new(move |_i: usize| {
            Box::new(ReadAdapter { addr, rkey }) as Box<dyn ProtoAdapter>
        }))
    }

    #[test]
    fn open_loop_completes_offered_load_when_unsaturated() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let cfg = OpenLoopConfig::smoke(200_000.0, 7);
        let r = run_open_loop(
            &[s],
            &model,
            VerbPath::Nic,
            &cfg,
            read_factory(addr, rkey),
            &RecoveryHooks::default(),
        );
        // 200k ops/s over 2 ms ≈ 400 completions; Poisson noise and
        // edge effects stay well inside ±50 %.
        assert!(
            r.completed > 200 && r.completed < 800,
            "completed {} of ~400 expected",
            r.completed
        );
        assert_eq!(r.failed, 0);
        // Unloaded latency is the unloaded RTT, far from the arrival
        // gaps: no backlog should form.
        assert_eq!(r.backlogged, 0, "unsaturated run must not backlog");
        assert!(r.tput_ops > 0.0 && r.mean_us > 0.0 && r.p99_us >= r.p50_us);
    }

    #[test]
    fn open_loop_replay_is_bit_exact() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        for seed in [7, 1806242025] {
            let cfg = OpenLoopConfig::smoke(300_000.0, seed);
            let a = run_open_loop(
                &[Arc::clone(&s)],
                &model,
                VerbPath::Nic,
                &cfg,
                read_factory(addr, rkey),
                &RecoveryHooks::default(),
            );
            let b = run_open_loop(
                &[Arc::clone(&s)],
                &model,
                VerbPath::Nic,
                &cfg,
                read_factory(addr, rkey),
                &RecoveryHooks::default(),
            );
            assert_eq!(a, b, "same seed must replay bit-exactly");
            assert!(a.completed > 0);
        }
    }

    #[test]
    fn saturated_run_backlogs_and_charges_queueing_to_latency() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        // 2 logical clients at an arrival rate far beyond what they can
        // carry: almost every arrival queues, and the queueing delay
        // dominates the recorded (intended-to-completion) latency.
        let cfg = OpenLoopConfig {
            arrivals: ArrivalSpec::Poisson {
                rate_per_sec: 1_000_000.0,
            },
            logical_clients: 2,
            max_inflight: 0,
            actors: 1,
            warmup: SimDuration::micros(100),
            measure: SimDuration::millis(1),
            seed: 11,
            faults: FaultPlan::default(),
        };
        let r = run_open_loop(
            &[s],
            &model,
            VerbPath::Nic,
            &cfg,
            read_factory(addr, rkey),
            &RecoveryHooks::default(),
        );
        assert!(r.backlogged > 0, "overload must backlog");
        // The unloaded RTT is a few µs; with the queue growing all
        // window, mean CO-free latency must blow far past it.
        assert!(
            r.mean_us > 50.0,
            "queueing delay not charged: mean {} µs",
            r.mean_us
        );
    }

    #[test]
    fn max_inflight_caps_live_slots_and_backlogs_the_rest() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let mut cfg = OpenLoopConfig::smoke(2_000_000.0, 9);
        cfg.max_inflight = 8;
        let r = run_open_loop(
            &[s],
            &model,
            VerbPath::Nic,
            &cfg,
            read_factory(addr, rkey),
            &RecoveryHooks::default(),
        );
        // 2 M ops/s against 8 slots of ~5.5 µs service: the pool is
        // pinned at the cap and the excess arrivals must queue.
        assert!(r.backlogged > 0, "capped run must backlog");
        assert!(r.completed > 0);
        assert!(
            r.mean_us > 50.0,
            "queueing behind the in-flight cap not charged: mean {} µs",
            r.mean_us
        );
    }

    #[test]
    #[should_panic(expected = "client crash windows")]
    fn client_crash_plans_are_rejected() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let mut cfg = OpenLoopConfig::smoke(100_000.0, 3);
        cfg.faults = FaultPlan {
            client_crashes: vec![prism_simnet::fault::ClientCrashWindow {
                client: 0,
                from: SimTime::from_nanos(0),
                until: SimTime::from_nanos(1),
            }],
            timeout: SimDuration::millis(1),
            ..FaultPlan::default()
        };
        let _ = run_open_loop(
            &[s],
            &model,
            VerbPath::Nic,
            &cfg,
            read_factory(addr, rkey),
            &RecoveryHooks::default(),
        );
    }
}
