//! Plain-text table output for the `fig_*` binaries.

/// A simple aligned table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as comma-separated values (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a throughput in millions of ops/s.
pub fn mops(x: f64) -> String {
    format!("{:.3}", x / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["x"]);
        t.row(&["1".into(), "2".into()]);
    }
}
