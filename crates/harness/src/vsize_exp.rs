//! Extension experiment (beyond the paper's figures): GET cost vs value
//! size.
//!
//! The bounded indirect READ (§3.1) is what lets PRISM-KV serve
//! variable-length values in one round trip; Pilaf pays its second READ
//! at every size, plus CRC work that grows with the value. This sweep
//! quantifies both effects from 64 B to 4 KiB — the gap widens with
//! payload because Pilaf's extra round trip and checksums scale while
//! PRISM's single reply only adds serialization.

use std::sync::Arc;

use prism_kv::pilaf::{PilafConfig, PilafServer};
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::SimDuration;
use prism_workload::ycsb::YcsbConfig;
use prism_workload::KeyDist;

use crate::adapters::{PilafAdapter, PrismKvAdapter};
use crate::kv_exp;
use crate::netsim::{run_closed_loop, VerbPath};
use crate::table::{f2, mops, Table};

/// Parameters for the value-size sweep.
#[derive(Debug, Clone)]
pub struct VsizeConfig {
    /// Value sizes to sweep.
    pub sizes: Vec<usize>,
    /// Keys per store (small: the sweep isolates payload cost).
    pub n_keys: u64,
    /// Clients for the saturated-throughput measurement.
    pub sat_clients: usize,
    /// Warm-up per point.
    pub warmup: SimDuration,
    /// Measurement per point.
    pub measure: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// Fault plan applied to every sweep point (default: none).
    pub faults: FaultPlan,
}

impl VsizeConfig {
    /// Full sweep.
    pub fn paper() -> Self {
        VsizeConfig {
            sizes: vec![64, 128, 256, 512, 1024, 2048, 4096],
            n_keys: 16_384,
            sat_clients: 192,
            warmup: SimDuration::millis(1),
            measure: SimDuration::millis(10),
            seed: 45,
            faults: FaultPlan::default(),
        }
    }

    /// Reduced sweep for smoke tests.
    pub fn quick() -> Self {
        VsizeConfig {
            sizes: vec![64, 1024],
            n_keys: 1_024,
            sat_clients: 64,
            warmup: SimDuration::micros(500),
            measure: crate::smoke::measure_window(3_000),
            seed: 45,
            faults: FaultPlan::default(),
        }
    }
}

/// Runs the sweep: for each value size, unloaded GET latency and
/// saturated GET throughput for PRISM-KV and Pilaf.
pub fn run(cfg: &VsizeConfig) -> Table {
    let model = CostModel::testbed();
    let mut t = Table::new(
        "Extension: GET cost vs value size (100% reads, uniform)",
        &[
            "value_B",
            "prism_us",
            "pilaf_us",
            "prism_sat_Mops",
            "pilaf_sat_Mops",
        ],
    );
    for &size in &cfg.sizes {
        let ycsb = YcsbConfig {
            dist: KeyDist::uniform(cfg.n_keys),
            read_fraction: 1.0,
            value_len: size,
        };

        let prism = PrismKvServer::new(&PrismKvConfig::paper(cfg.n_keys, size));
        kv_exp::preload_prism(&prism, cfg.n_keys, size);
        let prism_servers = vec![Arc::clone(prism.server())];

        let pilaf = PilafServer::new(&PilafConfig::paper(cfg.n_keys, size));
        kv_exp::preload_pilaf(&pilaf, cfg.n_keys, size);
        let pilaf_servers = vec![Arc::clone(pilaf.server())];

        let point =
            |servers: &[Arc<prism_core::PrismServer>],
             path: VerbPath,
             clients: usize,
             mk: &mut dyn FnMut(usize) -> Box<dyn crate::netsim::ProtoAdapter>| {
                run_closed_loop(
                    servers,
                    &model,
                    path,
                    clients,
                    mk,
                    cfg.warmup,
                    cfg.measure,
                    cfg.seed ^ size as u64 ^ ((clients as u64) << 20),
                    &cfg.faults,
                )
            };

        let seed = cfg.seed;
        let ycsb_p = ycsb.clone();
        let prism_lat = point(&prism_servers, VerbPath::Nic, 1, &mut |i| {
            Box::new(PrismKvAdapter::new(
                prism.open_client(),
                ycsb_p.clone(),
                SimRng::new(seed ^ (i as u64 + 1)),
            ))
        });
        let ycsb_p = ycsb.clone();
        let prism_sat = point(&prism_servers, VerbPath::Nic, cfg.sat_clients, &mut |i| {
            Box::new(PrismKvAdapter::new(
                prism.open_client(),
                ycsb_p.clone(),
                SimRng::new(seed ^ ((i as u64 + 1) * 31)),
            ))
        });
        let ycsb_l = ycsb.clone();
        let pilaf_lat = point(&pilaf_servers, VerbPath::Nic, 1, &mut |i| {
            Box::new(PilafAdapter::new(
                pilaf.open_client(),
                ycsb_l.clone(),
                SimRng::new(seed ^ ((i as u64 + 1) * 7)),
            ))
        });
        let ycsb_l = ycsb.clone();
        let pilaf_sat = point(&pilaf_servers, VerbPath::Nic, cfg.sat_clients, &mut |i| {
            Box::new(PilafAdapter::new(
                pilaf.open_client(),
                ycsb_l.clone(),
                SimRng::new(seed ^ ((i as u64 + 1) * 37)),
            ))
        });

        t.row(&[
            size.to_string(),
            f2(prism_lat.mean_us),
            f2(pilaf_lat.mean_us),
            mops(prism_sat.tput_ops),
            mops(pilaf_sat.tput_ops),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prism_wins_at_every_size_and_gap_is_real() {
        let cfg = VsizeConfig::quick();
        let t = run(&cfg);
        for line in t.to_csv().lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            let prism_us: f64 = c[1].parse().unwrap();
            let pilaf_us: f64 = c[2].parse().unwrap();
            let prism_sat: f64 = c[3].parse().unwrap();
            let pilaf_sat: f64 = c[4].parse().unwrap();
            assert!(
                prism_us < pilaf_us,
                "size {}: PRISM {prism_us}us vs Pilaf {pilaf_us}us",
                c[0]
            );
            assert!(
                prism_sat > pilaf_sat,
                "size {}: PRISM {prism_sat} vs Pilaf {pilaf_sat} Mops",
                c[0]
            );
        }
    }
}
