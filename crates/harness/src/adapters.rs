//! Per-system adapters: each wraps a protocol client and its workload
//! generator behind the closed-loop [`ProtoAdapter`] interface.
//!
//! Tags route replies back to the right state machine:
//! `tag = seq << 32 | phase << 16 | index`, where `seq` identifies the
//! operation (machines with quorum semantics outlive their completion
//! point to process stragglers and emit reclamation traffic).

use std::collections::HashMap;

use prism_core::msg::{Reply, Request};
use prism_core::OpStatus;
use prism_kv::pilaf::{PilafClient, PilafGetOp};
use prism_kv::prism_kv::{GetOp, PrismKvClient, PutOp};
use prism_kv::{hash::key_bytes, KvOutcome, KvStep};
use prism_rs::abdlock::{AbdLockClient, AbdLockOp, AbdStep};
use prism_rs::prism_rs::{RsClient, RsOp, RsStep};
use prism_simnet::rng::SimRng;
use prism_simnet::time::SimDuration;
use prism_tx::farm::{FarmClient, FarmOp, FarmOutcome, FarmStep};
use prism_tx::prism_tx::{TxClient, TxOp, TxOutcome, TxStep};
use prism_workload::{KeyDist, KvOp, TxnGen, YcsbConfig, YcsbGen};

use crate::cluster::{MapHandle, ShardMap};
use crate::netsim::{AdapterStep, Outbound, ProtoAdapter};

fn tag(seq: u64, phase: u32, idx: u32) -> u64 {
    (seq << 32) | ((phase as u64) << 16) | idx as u64
}

/// Transport-retry policy shared by the single-server KV adapters: a
/// synthesized timeout reply ([`Reply::Verb`]`(Err(..))` from the fault
/// layer) reissues the operation after a deterministic capped
/// exponential backoff, up to this many attempts, then surfaces as a
/// failed op. Quorum systems (RS) retry at the operation level instead,
/// and the transaction systems fold transport loss into their existing
/// abort paths.
const TRANSPORT_RETRY_BUDGET: u32 = 6;
const TRANSPORT_RETRY_BASE_NS: u64 = 8_000;
const TRANSPORT_RETRY_CAP_NS: u64 = 64_000;

fn transport_backoff(retry: u32) -> SimDuration {
    let exp = retry.saturating_sub(1).min(6);
    SimDuration::from_nanos((TRANSPORT_RETRY_BASE_NS << exp).min(TRANSPORT_RETRY_CAP_NS))
}

fn untag(t: u64) -> (u64, u32, u32) {
    (t >> 32, ((t >> 16) & 0xFFFF) as u32, (t & 0xFFFF) as u32)
}

/// Client-side reclamation batching (§3.2: "batching can be employed at
/// both client and server sides to minimize overhead"): single-buffer
/// free notifications from the protocol machines are coalesced per
/// server and flushed as one RPC every [`FreeBatcher::CAP`] buffers.
struct FreeBatcher {
    pending: HashMap<usize, Vec<u64>>,
}

impl FreeBatcher {
    /// Buffers per flush.
    const CAP: usize = 16;

    fn new() -> Self {
        FreeBatcher {
            pending: HashMap::new(),
        }
    }

    /// Absorbs one background request. Single-free messages
    /// (`[0x01, addr u64]`) are coalesced; anything else passes through.
    /// Returns a request to send now, if any.
    fn absorb(&mut self, server: usize, req: Request) -> Option<(usize, Request)> {
        if let Request::Rpc(bytes) = &req {
            if bytes.len() == 9 && bytes[0] == 0x01 {
                let addr = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
                let pending = self.pending.entry(server).or_default();
                pending.push(addr);
                if pending.len() >= Self::CAP {
                    let addrs = std::mem::take(pending);
                    return Some((server, Self::batch_request(&addrs)));
                }
                return None;
            }
        }
        Some((server, req))
    }

    fn batch_request(addrs: &[u64]) -> Request {
        let mut msg = Vec::with_capacity(3 + addrs.len() * 8);
        msg.push(0x04);
        msg.extend_from_slice(&(addrs.len() as u16).to_le_bytes());
        for a in addrs {
            msg.extend_from_slice(&a.to_le_bytes());
        }
        Request::Rpc(msg)
    }
}

// ---------------------------------------------------------------------
// PRISM-KV (Figures 3-4)
// ---------------------------------------------------------------------

enum KvMachine {
    Get(GetOp),
    Put(PutOp),
}

/// Closed-loop YCSB client over PRISM-KV, optionally sharded.
///
/// With one client and [`ShardMap::single`] this is the original
/// single-server adapter. With N clients, every operation is routed to
/// its key's home shard before the state machine starts; the machine
/// itself is untouched (sharding is pure client-side routing), and the
/// free batcher already coalesces reclamation per shard.
pub struct PrismKvAdapter {
    clients: Vec<PrismKvClient>,
    map: ShardMap,
    /// Live shard-map source, when the cluster can reshard mid-run: a
    /// stale-epoch fence refetches the snapshot from here and reroutes.
    handle: Option<MapHandle>,
    /// Home shard of the in-flight op (routing is per-operation; a
    /// PRISM-KV op's whole chain stays on one shard).
    shard: usize,
    gen: YcsbGen,
    current: Option<KvMachine>,
    /// The in-flight workload op, kept so a transport timeout can
    /// reissue it from scratch.
    op: Option<KvOp>,
    retries: u32,
    frees: FreeBatcher,
}

impl PrismKvAdapter {
    /// Creates the single-server adapter.
    pub fn new(client: PrismKvClient, config: YcsbConfig, rng: SimRng) -> Self {
        Self::sharded(vec![client], ShardMap::single(), config, rng)
    }

    /// Creates a routed adapter over one client per shard.
    ///
    /// # Panics
    ///
    /// Panics if the client count does not match the map's shard count.
    pub fn sharded(
        clients: Vec<PrismKvClient>,
        map: ShardMap,
        config: YcsbConfig,
        rng: SimRng,
    ) -> Self {
        assert_eq!(
            clients.len(),
            map.shards(),
            "one client per shard in shard order"
        );
        PrismKvAdapter {
            clients,
            map,
            handle: None,
            shard: 0,
            gen: YcsbGen::new(config, rng),
            current: None,
            op: None,
            retries: 0,
            frees: FreeBatcher::new(),
        }
    }

    /// Creates a routed adapter whose map can change under it: the
    /// cluster's [`MapHandle`] is refetched whenever a server fences a
    /// request with [`prism_rdma::RdmaError::StaleEpoch`]. Clients must
    /// cover every shard the map can grow into (standby shards
    /// included), in flat shard order.
    pub fn sharded_live(
        clients: Vec<PrismKvClient>,
        handle: MapHandle,
        config: YcsbConfig,
        rng: SimRng,
    ) -> Self {
        let map = handle.snapshot();
        assert!(
            clients.len() >= map.shards(),
            "clients must cover every shard the map can grow into"
        );
        PrismKvAdapter {
            clients,
            map,
            handle: Some(handle),
            shard: 0,
            gen: YcsbGen::new(config, rng),
            current: None,
            op: None,
            retries: 0,
            frees: FreeBatcher::new(),
        }
    }

    fn issue(&mut self, op: KvOp) -> Vec<Outbound> {
        let key = key_bytes(op.key());
        self.shard = self.map.shard_of(&key);
        let client = &self.clients[self.shard];
        let (machine, req) = match op {
            KvOp::Get(_) => {
                let (m, r) = client.get(&key);
                (KvMachine::Get(m), r)
            }
            KvOp::Put(k) => {
                let value = self.gen.value_for(k);
                let (m, r) = client.put(&key, &value);
                (KvMachine::Put(m), r)
            }
        };
        self.current = Some(machine);
        vec![Outbound {
            server: self.shard,
            tag: 0,
            req,
            background: false,
            epoch: self.map.epoch(),
        }]
    }

    fn bg_sends(&mut self, background: Option<prism_core::msg::Request>) -> Vec<Outbound> {
        background
            .and_then(|b| self.frees.absorb(self.shard, b))
            .map(|(server, req)| {
                vec![Outbound {
                    server,
                    tag: 0,
                    req,
                    background: true,
                    epoch: 0,
                }]
            })
            .unwrap_or_default()
    }

    fn step_to_adapter(&mut self, step: KvStep) -> AdapterStep {
        match step {
            KvStep::Send {
                request,
                background,
            } => {
                let mut sends = vec![Outbound {
                    server: self.shard,
                    tag: 0,
                    req: request,
                    background: false,
                    epoch: self.map.epoch(),
                }];
                sends.extend(self.bg_sends(background));
                AdapterStep::Wait(sends)
            }
            KvStep::Done {
                outcome,
                background,
            } => {
                self.current = None;
                let sends = self.bg_sends(background);
                AdapterStep::Done {
                    sends,
                    client_compute: SimDuration::ZERO,
                    failed: matches!(outcome, KvOutcome::Failed(_)),
                }
            }
        }
    }
}

impl ProtoAdapter for PrismKvAdapter {
    fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
        let op = self.gen.next_op();
        self.op = Some(op);
        self.retries = 0;
        self.issue(op)
    }

    fn resume(&mut self) -> Vec<Outbound> {
        // Transport retry: re-arm the *same* machine rather than
        // starting a fresh one. A PUT whose install chain went
        // unanswered may already have published; blindly re-running it
        // could resurrect its value over a newer racing write, so the
        // machine's reissue path re-reads the slot and decides.
        let client = &self.clients[self.shard];
        let req = match self.current.as_mut() {
            Some(KvMachine::Get(m)) => m.reissue(client),
            Some(KvMachine::Put(m)) => m.reissue(client),
            None => return self.issue(self.op.expect("op pending retry")),
        };
        vec![Outbound {
            server: self.shard,
            tag: 0,
            req,
            background: false,
            epoch: self.map.epoch(),
        }]
    }

    fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
        if let Some(inc) = reply.stale_incarnation() {
            // An amnesia-restarted shard fenced our pre-crash rkeys:
            // restamp them with its new incarnation (the rejoin replay
            // is server-side; the client only needs fresh capabilities)
            // and re-arm the same machine — the fenced request never
            // executed.
            self.clients[self.shard].refence(inc);
            if self.retries >= TRANSPORT_RETRY_BUDGET {
                self.current = None;
                self.op = None;
                return AdapterStep::GiveUp { sends: Vec::new() };
            }
            self.retries += 1;
            return AdapterStep::Retry {
                sends: Vec::new(),
                wait: transport_backoff(self.retries),
            };
        }
        if let Some(current) = reply.stale_epoch() {
            // The server fenced our request under a newer shard-map
            // epoch, so it never executed: refetch the map, reroute the
            // key, and restart the machine from a clean probe at the
            // key's (possibly new) home shard.
            if let Some(h) = &self.handle {
                let m = h.snapshot();
                if m.epoch() > self.map.epoch() {
                    self.map = m;
                }
            }
            let op = self.op.expect("op in flight");
            if self.map.epoch() >= current {
                self.current = None;
                return AdapterStep::Wait(self.issue(op));
            }
            // The fencing epoch is ahead of anything we can fetch (no
            // live handle, or the publish has not landed yet): treat it
            // as a transport failure and retry with backoff.
            self.current = None;
            if self.retries >= TRANSPORT_RETRY_BUDGET {
                self.op = None;
                return AdapterStep::GiveUp { sends: Vec::new() };
            }
            self.retries += 1;
            return AdapterStep::Retry {
                sends: Vec::new(),
                wait: transport_backoff(self.retries),
            };
        }
        if matches!(reply, Reply::Verb(Err(_))) {
            // Synthesized timeout from the fault layer (PRISM-KV chains
            // never produce verb errors on their own). The machine is
            // kept: resume() re-arms it in place.
            if self.retries >= TRANSPORT_RETRY_BUDGET {
                self.current = None;
                self.op = None;
                return AdapterStep::GiveUp { sends: Vec::new() };
            }
            self.retries += 1;
            return AdapterStep::Retry {
                sends: Vec::new(),
                wait: transport_backoff(self.retries),
            };
        }
        let mut machine = self.current.take().expect("op in flight");
        let client = &self.clients[self.shard];
        let step = match &mut machine {
            KvMachine::Get(m) => m.on_reply(client, reply),
            KvMachine::Put(m) => m.on_reply(client, reply),
        };
        self.current = Some(machine);
        self.step_to_adapter(step)
    }

    fn on_stale_reply(&mut self, _tag: u64, server: usize, reply: Reply) -> Vec<Outbound> {
        kv_harvest(server, reply)
    }

    fn hedge_eligible(&self, _tag: u64) -> bool {
        // Only GETs hedge: every leg of a GET machine (probe, resolve)
        // is an idempotent read, so racing two copies is safe. A PUT's
        // install chain allocates and CASes — duplicating it would
        // double-publish.
        matches!(self.current, Some(KvMachine::Get(_)))
    }

    fn abandon(&mut self) -> Vec<Outbound> {
        // Deadline shed: drop the op on the floor. KV machines hold at
        // most one request in flight and harvesting of raced replies is
        // stateless (`kv_harvest`), so there is nothing to park.
        self.current = None;
        self.op = None;
        self.retries = 0;
        Vec::new()
    }
}

/// Reclamation for a PRISM-KV reply that raced its own timeout: an
/// install chain is `[write, allocate, CAS, read-back]`, and when the
/// CAS lost, the read-back leg names the freshly allocated entry whose
/// only reference died with this reply — the machine reissued through
/// its resolve path and can never learn the address. Free it directly
/// (unbatched: harvests are rare and the pool-level regressions want
/// the free on the wire immediately). A won CAS leaves the buffer live
/// in the slot, and probe/resolve chains allocate nothing.
pub(crate) fn kv_harvest(server: usize, reply: Reply) -> Vec<Outbound> {
    let Some(results) = reply.chain_results() else {
        return Vec::new();
    };
    if results.len() != 4 || !matches!(results[2].status, OpStatus::CasFailed) {
        return Vec::new();
    }
    let Ok(d) = results[3].expect_data() else {
        return Vec::new();
    };
    if d.len() != 8 {
        return Vec::new();
    }
    let new_ptr = u64::from_le_bytes(d.try_into().expect("8 bytes"));
    if new_ptr == 0 {
        return Vec::new();
    }
    let mut msg = Vec::with_capacity(9);
    msg.push(0x01);
    msg.extend_from_slice(&new_ptr.to_le_bytes());
    vec![Outbound {
        server,
        tag: 0,
        req: Request::Rpc(msg),
        background: true,
        epoch: 0,
    }]
}

// ---------------------------------------------------------------------
// Pilaf (Figures 3-4 baselines)
// ---------------------------------------------------------------------

/// Client-side CRC verification cost per Pilaf GET: the paper measures
/// ~2 µs of Pilaf's read latency as CRC work (§6.2).
pub const PILAF_CRC_COST: SimDuration = SimDuration::from_nanos(2_000);

enum PilafMachine {
    Get(PilafGetOp),
    Put,
}

/// Closed-loop YCSB client over Pilaf.
pub struct PilafAdapter {
    client: PilafClient,
    gen: YcsbGen,
    current: Option<PilafMachine>,
    /// The in-flight workload op, kept so a transport timeout can
    /// reissue it from scratch.
    op: Option<KvOp>,
    retries: u32,
}

impl PilafAdapter {
    /// Creates the adapter.
    pub fn new(client: PilafClient, config: YcsbConfig, rng: SimRng) -> Self {
        PilafAdapter {
            client,
            gen: YcsbGen::new(config, rng),
            current: None,
            op: None,
            retries: 0,
        }
    }

    fn issue(&mut self, op: KvOp) -> Vec<Outbound> {
        let key = key_bytes(op.key());
        let (machine, req) = match op {
            KvOp::Get(_) => {
                let (m, r) = self.client.get(&key);
                (PilafMachine::Get(m), r)
            }
            KvOp::Put(k) => {
                let value = self.gen.value_for(k);
                (PilafMachine::Put, self.client.put_request(&key, &value))
            }
        };
        self.current = Some(machine);
        vec![Outbound {
            server: 0,
            tag: 0,
            req,
            background: false,
            epoch: 0,
        }]
    }
}

impl ProtoAdapter for PilafAdapter {
    fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
        let op = self.gen.next_op();
        self.op = Some(op);
        self.retries = 0;
        self.issue(op)
    }

    fn resume(&mut self) -> Vec<Outbound> {
        let op = self.op.expect("op pending retry");
        self.issue(op)
    }

    fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
        if matches!(reply, Reply::Verb(Err(_))) {
            // Synthesized timeout. Pilaf GETs are idempotent READs;
            // PUT RPCs reissued after a lost reply overwrite with the
            // same value.
            self.current = None;
            if self.retries >= TRANSPORT_RETRY_BUDGET {
                self.op = None;
                return AdapterStep::GiveUp { sends: Vec::new() };
            }
            self.retries += 1;
            return AdapterStep::Retry {
                sends: Vec::new(),
                wait: transport_backoff(self.retries),
            };
        }
        match self.current.take().expect("op in flight") {
            PilafMachine::Put => {
                let outcome = self.client.put_outcome(reply);
                AdapterStep::Done {
                    sends: Vec::new(),
                    client_compute: SimDuration::ZERO,
                    failed: matches!(outcome, KvOutcome::Failed(_)),
                }
            }
            PilafMachine::Get(mut m) => match m.on_reply(&self.client, reply) {
                KvStep::Send { request, .. } => {
                    self.current = Some(PilafMachine::Get(m));
                    AdapterStep::Wait(vec![Outbound {
                        server: 0,
                        tag: 0,
                        req: request,
                        background: false,
                        epoch: 0,
                    }])
                }
                KvStep::Done { outcome, .. } => AdapterStep::Done {
                    sends: Vec::new(),
                    client_compute: PILAF_CRC_COST,
                    failed: matches!(outcome, KvOutcome::Failed(_)),
                },
            },
        }
    }

    fn hedge_eligible(&self, _tag: u64) -> bool {
        // Pilaf GETs are pure one-sided READs (idempotent); PUT RPCs
        // mutate and must not race a copy of themselves.
        matches!(self.current, Some(PilafMachine::Get(_)))
    }

    fn abandon(&mut self) -> Vec<Outbound> {
        self.current = None;
        self.op = None;
        self.retries = 0;
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// PRISM-RS (Figures 6-7)
// ---------------------------------------------------------------------

/// Closed-loop block-store client over PRISM-RS: 50 % reads / 50 %
/// writes (§7.4), optionally sharded across replica groups.
///
/// With one client and [`ShardMap::single`] this is the original
/// 3-replica adapter. With S clients, each block routes to its home
/// *group* and the quorum protocol runs inside that group unchanged.
/// Flat server indices are group-major (`group * replicas + replica`,
/// the [`crate::cluster::RsShards`] layout) and reply tags carry the
/// flat index, so a straggler of a completed op still resolves its
/// group after the client has moved on to a block elsewhere.
pub struct PrismRsAdapter {
    clients: Vec<RsClient>,
    map: ShardMap,
    /// Live shard-map source, when the cluster can reshard mid-run: a
    /// stale-epoch fence refetches the snapshot from here and reroutes.
    handle: Option<MapHandle>,
    /// Replicas per group (flat index stride).
    replicas: usize,
    /// Home group of the in-flight op.
    group: usize,
    dist: KeyDist,
    block_size: usize,
    write_fraction: f64,
    seq: u64,
    current: Option<RsOp>,
    /// Completed-but-outstanding machines by seq; the reply tag's flat
    /// index names their group, so no group needs to be stored here.
    lingering: HashMap<u64, (RsOp, usize)>,
    outstanding: usize,
    /// The in-flight logical op (block, PUT value or `None` for GET),
    /// kept so a quorum failure can retry the whole operation under a
    /// fresh sequence number.
    op: Option<(u64, Option<Vec<u8>>)>,
    retries: u32,
    frees: FreeBatcher,
}

impl PrismRsAdapter {
    /// Creates the single-group adapter.
    pub fn new(client: RsClient, dist: KeyDist, block_size: usize, write_fraction: f64) -> Self {
        Self::sharded(
            vec![client],
            ShardMap::single(),
            dist,
            block_size,
            write_fraction,
        )
    }

    /// Creates a routed adapter over one client per replica group.
    ///
    /// # Panics
    ///
    /// Panics if the client count does not match the map's shard count
    /// or the groups disagree on replica count.
    pub fn sharded(
        clients: Vec<RsClient>,
        map: ShardMap,
        dist: KeyDist,
        block_size: usize,
        write_fraction: f64,
    ) -> Self {
        assert_eq!(
            clients.len(),
            map.shards(),
            "one client per replica group in group order"
        );
        let replicas = clients[0].n();
        assert!(
            clients.iter().all(|c| c.n() == replicas),
            "uniform replica count across groups"
        );
        PrismRsAdapter {
            clients,
            map,
            handle: None,
            replicas,
            group: 0,
            dist,
            block_size,
            write_fraction,
            seq: 0,
            current: None,
            lingering: HashMap::new(),
            outstanding: 0,
            op: None,
            retries: 0,
            frees: FreeBatcher::new(),
        }
    }

    /// Creates a routed adapter whose map can change under it: the
    /// cluster's [`MapHandle`] is refetched whenever a replica fences a
    /// request with [`prism_rdma::RdmaError::StaleEpoch`], and the
    /// in-flight operation is reissued against the block's new home
    /// group. Clients must cover every group the map can grow into
    /// (standby groups included), in group order.
    pub fn sharded_live(
        clients: Vec<RsClient>,
        handle: MapHandle,
        dist: KeyDist,
        block_size: usize,
        write_fraction: f64,
    ) -> Self {
        let map = handle.snapshot();
        assert!(
            clients.len() >= map.shards(),
            "clients must cover every group the map can grow into"
        );
        let replicas = clients[0].n();
        assert!(
            clients.iter().all(|c| c.n() == replicas),
            "uniform replica count across groups"
        );
        PrismRsAdapter {
            clients,
            map,
            handle: Some(handle),
            replicas,
            group: 0,
            dist,
            block_size,
            write_fraction,
            seq: 0,
            current: None,
            lingering: HashMap::new(),
            outstanding: 0,
            op: None,
            retries: 0,
            frees: FreeBatcher::new(),
        }
    }

    fn issue(&mut self) -> Vec<Outbound> {
        self.seq += 1;
        self.outstanding = 0;
        let (block, value) = self.op.clone().expect("op set");
        self.group = self.map.shard_of_id(block);
        let (op, step) = match value {
            Some(v) => self.clients[self.group].put(block, v),
            None => self.clients[self.group].get(block),
        };
        self.current = Some(op);
        let (sends, _) = self.absorb(step);
        sends
    }

    fn absorb(&mut self, step: RsStep) -> (Vec<Outbound>, Option<bool>) {
        let base = self.group * self.replicas;
        let mut sends = Vec::new();
        for (replica, phase, req) in step.send {
            self.outstanding += 1;
            sends.push(Outbound {
                server: base + replica,
                tag: tag(self.seq, phase, (base + replica) as u32),
                req,
                background: false,
                epoch: self.map.epoch(),
            });
        }
        for (replica, req) in step.background {
            if let Some((server, req)) = self.frees.absorb(base + replica, req) {
                sends.push(Outbound {
                    server,
                    tag: 0,
                    req,
                    background: true,
                    epoch: 0,
                });
            }
        }
        let done = step.done.map(|o| {
            if std::env::var("PRISM_DEBUG_FAULTS").is_ok() {
                if let prism_rs::RsOutcome::Failed(why) = &o {
                    eprintln!("rs seq {} failed: {why}", self.seq);
                }
            }
            matches!(o, prism_rs::RsOutcome::Failed(_))
        });
        (sends, done)
    }
}

impl ProtoAdapter for PrismRsAdapter {
    fn start(&mut self, rng: &mut SimRng) -> Vec<Outbound> {
        let block = self.dist.sample(rng);
        let value = if rng.gen_bool(self.write_fraction) {
            let mut value = vec![0u8; self.block_size];
            let nonce = rng.next_u64().to_le_bytes();
            value[..8].copy_from_slice(&nonce);
            Some(value)
        } else {
            None
        };
        self.op = Some((block, value));
        self.retries = 0;
        self.issue()
    }

    fn resume(&mut self) -> Vec<Outbound> {
        // Operation-level retry: same block and (for PUTs) same value,
        // fresh sequence number, but the *same* machine — a PUT whose
        // write phase already chose its tag must retry under that tag
        // (see RsOp::reissue), or the retry could resurrect its value
        // over a later write readers already observed. Stragglers of
        // the abandoned attempt are parked under the old seq so their
        // reclamation still lands.
        let Some(mut op) = self.current.take() else {
            return self.issue();
        };
        if self.outstanding > 0 {
            self.lingering
                .insert(self.seq, (op.clone(), self.outstanding));
        }
        self.seq += 1;
        self.outstanding = 0;
        // Re-route through the current map: a no-op unless a stale-epoch
        // fence refreshed it since the attempt started.
        let (block, _) = self.op.clone().expect("op set");
        self.group = self.map.shard_of_id(block);
        let step = op.reissue(&self.clients[self.group]);
        self.current = Some(op);
        let (sends, _) = self.absorb(step);
        sends
    }

    fn on_reply(&mut self, t: u64, reply: Reply) -> AdapterStep {
        let (seq, phase, idx) = untag(t);
        // The tag carries the flat server index; decompose it so a
        // straggler from a previous op still lands in its own group.
        let group = idx as usize / self.replicas;
        let replica = idx as usize % self.replicas;
        if let Some(inc) = reply.stale_incarnation() {
            // An amnesia-restarted replica fenced our pre-crash rkeys:
            // restamp them with its new incarnation so the operation-
            // level retry reaches it again (§7.2 rejoin is server-side;
            // the client only needs fresh capabilities).
            self.clients[group].refence(replica, inc);
        }
        if let Some(current_epoch) = reply.stale_epoch() {
            if seq == self.seq && self.current.is_some() {
                // A replica fenced this attempt under a newer shard-map
                // epoch: refetch the map and reissue the same machine
                // against the block's new home group. The fenced leg
                // never executed; stragglers of this attempt park under
                // the old seq, exactly as in resume(). A PUT that
                // already chose its tag keeps it (RsOp::reissue), so
                // the cross-group retry cannot resurrect its value over
                // a later write the new group accepted.
                if let Some(h) = &self.handle {
                    let m = h.snapshot();
                    if m.epoch() > self.map.epoch() {
                        self.map = m;
                    }
                }
                self.outstanding -= 1;
                let mut op = self.current.take().expect("op in flight");
                if self.map.epoch() >= current_epoch {
                    if self.outstanding > 0 {
                        self.lingering
                            .insert(self.seq, (op.clone(), self.outstanding));
                    }
                    self.seq += 1;
                    self.outstanding = 0;
                    let (block, _) = self.op.clone().expect("op set");
                    self.group = self.map.shard_of_id(block);
                    let step = op.reissue(&self.clients[self.group]);
                    self.current = Some(op);
                    let (sends, _) = self.absorb(step);
                    return AdapterStep::Wait(sends);
                }
                // The fencing epoch is ahead of anything we can fetch:
                // fall back to an op-level retry with backoff.
                if self.retries >= TRANSPORT_RETRY_BUDGET {
                    if self.outstanding > 0 {
                        self.lingering.insert(self.seq, (op, self.outstanding));
                    }
                    return AdapterStep::GiveUp { sends: Vec::new() };
                }
                self.current = Some(op);
                self.retries += 1;
                return AdapterStep::Retry {
                    sends: Vec::new(),
                    wait: transport_backoff(self.retries),
                };
            }
            // A fence NACK trailing an abandoned attempt falls through
            // to the straggler path: the machine counts it as a failed
            // leg, keeping the lingering bookkeeping exact.
        }
        if seq != self.seq || self.current.is_none() {
            // Straggler for a completed op: feed it for reclamation.
            let mut finished = false;
            let mut sends = Vec::new();
            let mut raw = Vec::new();
            if let Some((op, remaining)) = self.lingering.get_mut(&seq) {
                let step = op.on_reply(&self.clients[group], phase, replica, reply);
                raw = step.background;
                *remaining -= 1;
                finished = *remaining == 0;
            }
            let base = group * self.replicas;
            for (r, req) in raw {
                if let Some((server, req)) = self.frees.absorb(base + r, req) {
                    sends.push(Outbound {
                        server,
                        tag: 0,
                        req,
                        background: true,
                        epoch: 0,
                    });
                }
            }
            if finished {
                self.lingering.remove(&seq);
            }
            return AdapterStep::Wait(sends);
        }
        let mut op = self.current.take().expect("op in flight");
        self.outstanding -= 1;
        let step = op.on_reply(&self.clients[self.group], phase, replica, reply);
        let (sends, done) = self.absorb(step);
        match done {
            Some(failed) => {
                if failed && self.retries < TRANSPORT_RETRY_BUDGET {
                    // Keep the machine for the reissue; until then it
                    // continues absorbing this attempt's stragglers.
                    self.current = Some(op);
                    self.retries += 1;
                    return AdapterStep::Retry {
                        sends,
                        wait: transport_backoff(self.retries),
                    };
                }
                if self.outstanding > 0 {
                    self.lingering.insert(self.seq, (op, self.outstanding));
                } else {
                    drop(op);
                }
                if failed {
                    return AdapterStep::GiveUp { sends };
                }
                AdapterStep::Done {
                    sends,
                    client_compute: SimDuration::ZERO,
                    failed,
                }
            }
            None => {
                self.current = Some(op);
                AdapterStep::Wait(sends)
            }
        }
    }

    fn on_stale_reply(&mut self, _tag: u64, server: usize, reply: Reply) -> Vec<Outbound> {
        rs_harvest(server, reply)
    }

    fn hedge_eligible(&self, t: u64) -> bool {
        // Quorum-read legs hedge: a GET's phases are all reads, so the
        // loser of the race is just one more straggler for the machine
        // (read chains allocate nothing, so the harvest is a no-op).
        // PUT legs allocate and CAS; only the leg's own reissue path
        // may duplicate them. The tag gate keeps a straggler-epoch tag
        // from hedging after the op has moved on.
        untag(t).0 == self.seq && self.current.is_some() && matches!(self.op, Some((_, None)))
    }

    fn abandon(&mut self) -> Vec<Outbound> {
        // Deadline shed mid-quorum: park the machine exactly as a
        // reissue would, so stragglers of the abandoned attempt still
        // resolve against it and their reclamation traffic lands.
        if let Some(op) = self.current.take() {
            if self.outstanding > 0 {
                self.lingering.insert(self.seq, (op, self.outstanding));
            }
        }
        self.outstanding = 0;
        self.op = None;
        self.retries = 0;
        Vec::new()
    }
}

/// Reclamation for a PRISM-RS write-phase reply that raced its own
/// timeout. The chain is `[write, allocate, CAS_GT, read-back]` and the
/// machine never saw this reply, so the free it would have emitted
/// ([`RsOp::on_reply`]'s write path) is produced here instead: a lost
/// CAS orphans the freshly allocated buffer; a won CAS displaces the
/// buffer previously installed in the metadata entry. Read-phase chains
/// allocate nothing.
pub(crate) fn rs_harvest(server: usize, reply: Reply) -> Vec<Outbound> {
    let Some(results) = reply.chain_results() else {
        return Vec::new();
    };
    if results.len() != 4 {
        return Vec::new();
    }
    let addr = match &results[2].status {
        OpStatus::Ok if results[2].data.len() == 16 => {
            u64::from_le_bytes(results[2].data[8..16].try_into().expect("8 bytes"))
        }
        OpStatus::CasFailed => match results[3].expect_data() {
            Ok(d) if d.len() == 8 => u64::from_le_bytes(d.try_into().expect("8 bytes")),
            _ => 0,
        },
        _ => 0,
    };
    if addr == 0 {
        return Vec::new();
    }
    let mut msg = Vec::with_capacity(9);
    msg.push(0x01);
    msg.extend_from_slice(&addr.to_le_bytes());
    vec![Outbound {
        server,
        tag: 0,
        req: Request::Rpc(msg),
        background: true,
        epoch: 0,
    }]
}

// ---------------------------------------------------------------------
// ABDLOCK (Figures 6-7 baseline)
// ---------------------------------------------------------------------

/// Closed-loop block-store client over the lock-based ABD baseline.
pub struct AbdLockAdapter {
    client: AbdLockClient,
    dist: KeyDist,
    block_size: usize,
    write_fraction: f64,
    seq: u64,
    current: Option<AbdLockOp>,
    lingering: HashMap<u64, AbdLockOp>,
}

impl AbdLockAdapter {
    /// Creates the adapter.
    pub fn new(
        client: AbdLockClient,
        dist: KeyDist,
        block_size: usize,
        write_fraction: f64,
    ) -> Self {
        AbdLockAdapter {
            client,
            dist,
            block_size,
            write_fraction,
            seq: 0,
            current: None,
            lingering: HashMap::new(),
        }
    }

    fn absorb(&mut self, step: AbdStep) -> (Vec<Outbound>, Option<bool>, Option<SimDuration>) {
        let sends = step
            .send
            .into_iter()
            .map(|(replica, phase, req)| Outbound {
                server: replica,
                tag: tag(self.seq, phase, replica as u32),
                req,
                background: false,
                epoch: 0,
            })
            .collect();
        let done = step
            .done
            .map(|o| matches!(o, prism_rs::RsOutcome::Failed(_)));
        let backoff = step.backoff_ns.map(SimDuration::from_nanos);
        (sends, done, backoff)
    }

    fn emit_step(
        &mut self,
        sends: Vec<Outbound>,
        done: Option<bool>,
        backoff: Option<SimDuration>,
    ) -> AdapterStep {
        if let Some(failed) = done {
            if let Some(op) = self.current.take() {
                // Keep completed machines around briefly for stale lock
                // rollbacks; bounded by replacing on reuse of the map
                // slot.
                self.lingering.insert(self.seq, op);
                if self.lingering.len() > 64 {
                    let oldest = *self.lingering.keys().min().expect("nonempty");
                    self.lingering.remove(&oldest);
                }
            }
            return AdapterStep::Done {
                sends,
                client_compute: SimDuration::ZERO,
                failed,
            };
        }
        if let Some(wait) = backoff {
            return AdapterStep::Backoff {
                sends: Vec::new(),
                wait,
            };
        }
        AdapterStep::Wait(sends)
    }
}

impl ProtoAdapter for AbdLockAdapter {
    fn start(&mut self, rng: &mut SimRng) -> Vec<Outbound> {
        self.seq += 1;
        let block = self.dist.sample(rng);
        let (op, step) = if rng.gen_bool(self.write_fraction) {
            let mut value = vec![0u8; self.block_size];
            value[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
            self.client.put(block, value)
        } else {
            self.client.get(block)
        };
        self.current = Some(op);
        let (sends, _, _) = self.absorb(step);
        sends
    }

    fn resume(&mut self) -> Vec<Outbound> {
        let mut op = self.current.take().expect("op backing off");
        let step = op.resume(&mut self.client);
        self.current = Some(op);
        let (sends, _, _) = self.absorb(step);
        sends
    }

    fn on_reply(&mut self, t: u64, reply: Reply) -> AdapterStep {
        let (seq, phase, replica) = untag(t);
        if seq != self.seq {
            // Straggler (e.g. a stale lock success needing rollback).
            let mut sends = Vec::new();
            if let Some(op) = self.lingering.get_mut(&seq) {
                let step = op.on_reply(&mut self.client, phase, replica as usize, reply);
                for (r, p, req) in step.send {
                    sends.push(Outbound {
                        server: r,
                        tag: tag(seq, p, r as u32),
                        req,
                        background: true,
                        epoch: 0,
                    });
                }
            }
            return AdapterStep::Wait(sends);
        }
        let mut op = self.current.take().expect("op in flight");
        let step = op.on_reply(&mut self.client, phase, replica as usize, reply);
        self.current = Some(op);
        let (sends, done, backoff) = self.absorb(step);
        self.emit_step(sends, done, backoff)
    }
}

// ---------------------------------------------------------------------
// PRISM-TX (Figures 9-10)
// ---------------------------------------------------------------------

/// Abort backoff: base wait, doubled per consecutive abort (capped).
/// Without pacing, a contended key's losing transactions flood the
/// dispatch cores with futile validation chains — unlike FaRM, whose
/// waiting clients poll locked objects through the NIC for free. Backoff
/// is the standard OCC client policy and is applied to both systems.
const TX_BACKOFF_BASE_NS: u64 = 4_000;
const TX_BACKOFF_CAP_NS: u64 = 32_000;

fn tx_backoff(consecutive_aborts: u32, rng: &mut SimRng) -> SimDuration {
    // Immediate retries livelock at high skew (synchronized stampedes
    // re-collide with the in-flight winner's prepared-write window), so
    // even the first abort waits ~one round trip. The cap stays small:
    // an idle hot key wastes its serialization slot.
    let exp = consecutive_aborts.saturating_sub(1).min(7);
    let base = (TX_BACKOFF_BASE_NS << exp).min(TX_BACKOFF_CAP_NS);
    SimDuration::from_nanos(base + rng.gen_range(base))
}

/// Closed-loop YCSB-T client over PRISM-TX: each operation is a short
/// read-modify-write transaction retried (with backoff) until it
/// commits (§8.3).
pub struct PrismTxAdapter {
    client: TxClient,
    gen: TxnGen,
    seq: u64,
    keys: Vec<u64>,
    current: Option<TxOp>,
    lingering: HashMap<u64, (TxOp, usize)>,
    outstanding: usize,
    aborts: u64,
    consecutive_aborts: u32,
    rng: SimRng,
    frees: FreeBatcher,
}

impl PrismTxAdapter {
    /// Creates the adapter.
    pub fn new(client: TxClient, gen: TxnGen) -> Self {
        let seed = (client.cid() as u64) << 17 | 0x5A5A;
        PrismTxAdapter {
            client,
            gen,
            seq: 0,
            keys: Vec::new(),
            current: None,
            lingering: HashMap::new(),
            outstanding: 0,
            aborts: 0,
            consecutive_aborts: 0,
            rng: SimRng::new(seed),
            frees: FreeBatcher::new(),
        }
    }

    /// Total aborted attempts (diagnostics).
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    fn begin_attempt(&mut self) -> Vec<Outbound> {
        self.seq += 1;
        self.outstanding = 0;
        let keys = self.keys.clone();
        let writes: Vec<(u64, Vec<u8>)> =
            keys.iter().map(|&k| (k, self.gen.value_for(k))).collect();
        let (op, step) = self.client.begin(keys, writes);
        self.current = Some(op);
        let (sends, _) = self.absorb_tx(step);
        sends
    }

    fn absorb_tx(&mut self, step: TxStep) -> (Vec<Outbound>, Option<TxOutcome>) {
        let mut sends = Vec::new();
        for (shard, phase, idx, req) in step.send {
            self.outstanding += 1;
            sends.push(Outbound {
                server: shard,
                tag: tag(self.seq, phase, idx),
                req,
                background: false,
                epoch: 0,
            });
        }
        for (shard, req) in step.background {
            if let Some((server, req)) = self.frees.absorb(shard, req) {
                sends.push(Outbound {
                    server,
                    tag: 0,
                    req,
                    background: true,
                    epoch: 0,
                });
            }
        }
        (sends, step.done)
    }
}

impl ProtoAdapter for PrismTxAdapter {
    fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
        self.keys = self.gen.next_txn().keys;
        self.consecutive_aborts = 0;
        self.begin_attempt()
    }

    fn resume(&mut self) -> Vec<Outbound> {
        // Retry the same transaction after an abort backoff.
        self.begin_attempt()
    }

    fn on_reply(&mut self, t: u64, reply: Reply) -> AdapterStep {
        let (seq, phase, idx) = untag(t);
        if seq != self.seq || self.current.is_none() {
            let mut finished = false;
            let mut sends = Vec::new();
            let mut raw = Vec::new();
            if let Some((op, remaining)) = self.lingering.get_mut(&seq) {
                let step = op.on_reply(&mut self.client, phase, idx, reply);
                raw = step.background;
                *remaining -= 1;
                finished = *remaining == 0;
            }
            for (s, req) in raw {
                if let Some((server, req)) = self.frees.absorb(s, req) {
                    sends.push(Outbound {
                        server,
                        tag: 0,
                        req,
                        background: true,
                        epoch: 0,
                    });
                }
            }
            if finished {
                self.lingering.remove(&seq);
            }
            return AdapterStep::Wait(sends);
        }
        let mut op = self.current.take().expect("txn in flight");
        self.outstanding -= 1;
        let step = op.on_reply(&mut self.client, phase, idx, reply);
        let (sends, done) = self.absorb_tx(step);
        match done {
            Some(TxOutcome::Committed(_)) => {
                self.park(op);
                AdapterStep::Done {
                    sends,
                    client_compute: SimDuration::ZERO,
                    failed: false,
                }
            }
            Some(TxOutcome::Aborted) => {
                self.aborts += 1;
                self.consecutive_aborts += 1;
                self.park(op);
                // Flush reclamation traffic, back off, then retry the
                // same transaction with fresh reads; latency keeps
                // accumulating on the same closed-loop op.
                debug_assert!(sends.iter().all(|o| o.background));
                AdapterStep::Backoff {
                    sends,
                    wait: tx_backoff(self.consecutive_aborts, &mut self.rng),
                }
            }
            Some(TxOutcome::Failed(_)) => {
                self.park(op);
                AdapterStep::Done {
                    sends,
                    client_compute: SimDuration::ZERO,
                    failed: true,
                }
            }
            None => {
                self.current = Some(op);
                AdapterStep::Wait(sends)
            }
        }
    }

    fn abandon(&mut self) -> Vec<Outbound> {
        // PRISM-TX retries aborts through Backoff (never Retry), so the
        // deadline shed cannot fire today; parking keeps the straggler
        // bookkeeping exact if that ever changes.
        if let Some(op) = self.current.take() {
            self.park(op);
        }
        self.outstanding = 0;
        self.consecutive_aborts = 0;
        Vec::new()
    }
}

impl PrismTxAdapter {
    fn park(&mut self, op: TxOp) {
        if self.outstanding > 0 {
            self.lingering.insert(self.seq, (op, self.outstanding));
        }
    }
}

// ---------------------------------------------------------------------
// FaRM (Figures 9-10 baseline)
// ---------------------------------------------------------------------

/// Closed-loop YCSB-T client over FaRM.
pub struct FarmAdapter {
    client: FarmClient,
    gen: TxnGen,
    seq: u64,
    keys: Vec<u64>,
    current: Option<FarmOp>,
    aborts: u64,
    consecutive_aborts: u32,
    rng: SimRng,
}

impl FarmAdapter {
    /// Creates the adapter.
    pub fn new(client: FarmClient, gen: TxnGen) -> Self {
        FarmAdapter {
            client,
            gen,
            seq: 0,
            keys: Vec::new(),
            current: None,
            aborts: 0,
            consecutive_aborts: 0,
            rng: SimRng::new(0xFA12),
        }
    }

    /// Total aborted attempts (diagnostics).
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    fn begin_attempt(&mut self) -> Vec<Outbound> {
        self.seq += 1;
        let keys = self.keys.clone();
        let writes: Vec<(u64, Vec<u8>)> =
            keys.iter().map(|&k| (k, self.gen.value_for(k))).collect();
        let (op, step) = self.client.begin(keys, writes);
        self.current = Some(op);
        self.absorb_farm(step).0
    }

    fn absorb_farm(&mut self, step: FarmStep) -> (Vec<Outbound>, Option<FarmOutcome>) {
        let sends = step
            .send
            .into_iter()
            .map(|(shard, phase, idx, req)| Outbound {
                server: shard,
                tag: tag(self.seq, phase, idx),
                req,
                background: false,
                epoch: 0,
            })
            .collect();
        (sends, step.done)
    }
}

impl ProtoAdapter for FarmAdapter {
    fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
        self.keys = self.gen.next_txn().keys;
        self.consecutive_aborts = 0;
        self.begin_attempt()
    }

    fn resume(&mut self) -> Vec<Outbound> {
        self.begin_attempt()
    }

    fn on_reply(&mut self, t: u64, reply: Reply) -> AdapterStep {
        let (seq, phase, idx) = untag(t);
        if seq != self.seq {
            return AdapterStep::Wait(Vec::new());
        }
        let mut op = self.current.take().expect("txn in flight");
        let step = op.on_reply(&self.client, phase, idx, reply);
        self.current = Some(op);
        let (sends, done) = self.absorb_farm(step);
        match done {
            Some(FarmOutcome::Committed(_)) => AdapterStep::Done {
                sends,
                client_compute: SimDuration::ZERO,
                failed: false,
            },
            Some(FarmOutcome::Aborted) => {
                self.aborts += 1;
                self.consecutive_aborts += 1;
                debug_assert!(sends.is_empty(), "FaRM aborts send nothing");
                AdapterStep::Backoff {
                    sends,
                    wait: tx_backoff(self.consecutive_aborts, &mut self.rng),
                }
            }
            Some(FarmOutcome::Failed(_)) => AdapterStep::Done {
                sends,
                client_compute: SimDuration::ZERO,
                failed: true,
            },
            None => AdapterStep::Wait(sends),
        }
    }
}
