//! Figures 3 and 4: PRISM-KV vs Pilaf throughput-latency curves.
//!
//! Figure 3 is YCSB-C (100 % reads); Figure 4 is YCSB-A (50/50). Both
//! use uniform key popularity, 8-byte keys, 512-byte values, and a
//! collisionless hash (§6.2). Three systems run: PRISM-KV (chains on
//! the software data plane), Pilaf over hardware RDMA (one-sided READs
//! on the NIC, PUT RPCs on the CPU), and Pilaf over software RDMA
//! (READs also executed by dispatch cores).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use prism_core::msg::execute_local;
use prism_kv::hash::key_bytes;
use prism_kv::pilaf::{PilafConfig, PilafServer};
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_kv::KvStep;
use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::SimDuration;
use prism_workload::ycsb::{value_bytes, YcsbConfig};
use prism_workload::KeyDist;

use crate::adapters::{PilafAdapter, PrismKvAdapter};
use crate::cluster::KvCluster;
use crate::netsim::{run_closed_loop, ProtoAdapter, RunResult, VerbPath};
use crate::openloop::{sweep_rates, AdapterFactory, OpenLoopKnobs, OpenLoopResult};
use crate::table::{f2, mops, Table};

/// Experiment parameters (defaults mirror §6.2 at reduced key count;
/// see EXPERIMENTS.md for the scaling note).
#[derive(Debug, Clone)]
pub struct KvExpConfig {
    /// Key count (the paper uses 8 M; we default lower to fit RAM).
    pub n_keys: u64,
    /// Value bytes (512 in the paper).
    pub value_len: usize,
    /// Fraction of GETs (1.0 = YCSB-C, 0.5 = YCSB-A).
    pub read_fraction: f64,
    /// Closed-loop client counts to sweep.
    pub clients: Vec<usize>,
    /// Warm-up time per point.
    pub warmup: SimDuration,
    /// Measurement time per point.
    pub measure: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// Fault plan applied to every sweep point (default: none).
    pub faults: FaultPlan,
}

impl KvExpConfig {
    /// Full-scale run (several seconds of wall clock in release mode).
    pub fn paper(read_fraction: f64) -> Self {
        KvExpConfig {
            n_keys: 262_144,
            value_len: 512,
            read_fraction,
            clients: vec![1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256],
            warmup: SimDuration::millis(2),
            measure: SimDuration::millis(20),
            seed: 42,
            faults: FaultPlan::default(),
        }
    }

    /// Reduced run for smoke tests.
    pub fn quick(read_fraction: f64) -> Self {
        KvExpConfig {
            n_keys: 1_024,
            value_len: 512,
            read_fraction,
            clients: vec![1, 16, 64],
            warmup: SimDuration::micros(500),
            measure: crate::smoke::measure_window(4_000),
            seed: 42,
            faults: FaultPlan::default(),
        }
    }
}

/// Preloads every key so GETs always hit (the YCSB load phase).
pub fn preload_prism(server: &PrismKvServer, n_keys: u64, value_len: usize) {
    let client = server.open_client();
    for k in 0..n_keys {
        let key = key_bytes(k);
        let value = value_bytes(k, 0, value_len);
        let (mut op, req) = client.put(&key, &value);
        let mut reply = execute_local(server.server(), &req);
        loop {
            match op.on_reply(&client, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    if let Some(b) = background {
                        execute_local(server.server(), &b);
                    }
                    reply = execute_local(server.server(), &request);
                }
                KvStep::Done { background, .. } => {
                    if let Some(b) = background {
                        execute_local(server.server(), &b);
                    }
                    break;
                }
            }
        }
    }
}

/// Preloads a Pilaf store the same way.
pub fn preload_pilaf(server: &PilafServer, n_keys: u64, value_len: usize) {
    let client = server.open_client();
    for k in 0..n_keys {
        let req = client.put_request(&key_bytes(k), &value_bytes(k, 0, value_len));
        execute_local(server.server(), &req);
    }
}

/// One system's sweep.
fn sweep(
    label: &str,
    cfg: &KvExpConfig,
    servers: &[Arc<prism_core::PrismServer>],
    verb_path: VerbPath,
    mk: &mut dyn FnMut(usize) -> Box<dyn crate::netsim::ProtoAdapter>,
    t: &mut Table,
) -> Vec<RunResult> {
    let model = CostModel::testbed();
    let mut out = Vec::new();
    for &n in &cfg.clients {
        let r = run_closed_loop(
            servers,
            &model,
            verb_path,
            n,
            mk,
            cfg.warmup,
            cfg.measure,
            cfg.seed ^ n as u64,
            &cfg.faults,
        );
        t.row(&[
            label.to_string(),
            n.to_string(),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p99_us),
        ]);
        out.push(r);
    }
    out
}

/// Runs the full experiment; returns the results table and the peak
/// throughput per system (PRISM-KV, Pilaf, Pilaf-sw).
pub fn run(cfg: &KvExpConfig) -> (Table, [f64; 3]) {
    let title = format!(
        "Figure {}: PRISM-KV vs Pilaf, {:.0}% reads, uniform ({} keys x {} B)",
        if cfg.read_fraction >= 1.0 { "3" } else { "4" },
        cfg.read_fraction * 100.0,
        cfg.n_keys,
        cfg.value_len
    );
    let mut t = Table::new(
        &title,
        &["system", "clients", "tput_Mops", "mean_us", "p99_us"],
    );

    let ycsb = YcsbConfig {
        dist: KeyDist::uniform(cfg.n_keys),
        read_fraction: cfg.read_fraction,
        value_len: cfg.value_len,
    };

    // PRISM-KV. Spares must cover client-side free batching (each
    // client may hold a batch of reclaimed buffers before flushing).
    let max_clients = cfg.clients.iter().copied().max().unwrap_or(0) as u64;
    let mut prism_cfg = PrismKvConfig::paper(cfg.n_keys, cfg.value_len);
    for class in &mut prism_cfg.classes {
        class.count += 32 * (max_clients + 16);
    }
    let prism = PrismKvServer::new(&prism_cfg);
    preload_prism(&prism, cfg.n_keys, cfg.value_len);
    let prism_servers = vec![Arc::clone(prism.server())];
    let ycsb_p = ycsb.clone();
    let seed = cfg.seed;
    let prism_res = sweep(
        "PRISM-KV",
        cfg,
        &prism_servers,
        VerbPath::Nic,
        &mut |i| {
            Box::new(PrismKvAdapter::new(
                prism.open_client(),
                ycsb_p.clone(),
                SimRng::new(seed ^ ((i as u64 + 1) * 7919)),
            ))
        },
        &mut t,
    );

    // Pilaf over hardware RDMA and software RDMA.
    let pilaf = PilafServer::new(&PilafConfig::paper(cfg.n_keys, cfg.value_len));
    preload_pilaf(&pilaf, cfg.n_keys, cfg.value_len);
    let pilaf_servers = vec![Arc::clone(pilaf.server())];
    let mut peaks = [0.0f64; 3];
    peaks[0] = prism_res.iter().map(|r| r.tput_ops).fold(0.0, f64::max);
    for (slot, (label, path)) in [
        ("Pilaf", VerbPath::Nic),
        ("Pilaf (software RDMA)", VerbPath::Cpu),
    ]
    .into_iter()
    .enumerate()
    {
        let ycsb_c = ycsb.clone();
        let res = sweep(
            label,
            cfg,
            &pilaf_servers,
            path,
            &mut |i| {
                Box::new(PilafAdapter::new(
                    pilaf.open_client(),
                    ycsb_c.clone(),
                    SimRng::new(seed ^ ((i as u64 + 1) * 104_729)),
                ))
            },
            &mut t,
        );
        peaks[slot + 1] = res.iter().map(|r| r.tput_ops).fold(0.0, f64::max);
    }
    (t, peaks)
}

/// Open-loop latency-under-load sweep for PRISM-KV: Poisson arrivals at
/// each offered rate over `knobs.logical_clients` multiplexed logical
/// clients, recording the coordinated-omission-free latency
/// distribution. Complements the closed-loop throughput-latency curves
/// of Figures 3–4 with the question they cannot answer: what latency
/// does a *fixed offered load* observe as it approaches and passes the
/// saturation point?
pub fn open_loop(cfg: &KvExpConfig, knobs: &OpenLoopKnobs) -> (Table, Vec<(f64, OpenLoopResult)>) {
    let mut prism_cfg = PrismKvConfig::paper(cfg.n_keys, cfg.value_len);
    // Spares cover client-side free batching for the slots that can be
    // concurrently live — bounded by the in-flight cap, not the logical
    // population, so a 10⁵-logical-client run does not preallocate for
    // clients that are only ever backlogged.
    for class in &mut prism_cfg.classes {
        class.count += 32 * (knobs.live_slots() as u64 + 16);
    }
    let seed = cfg.seed;
    let n_keys = cfg.n_keys;
    let value_len = cfg.value_len;
    let read_fraction = cfg.read_fraction;
    // One store for the whole sweep: each point's adapters reopen
    // connections from the recycled slot pool (see `sweep_rates`).
    let prism = Rc::new(PrismKvServer::new(&prism_cfg));
    preload_prism(&prism, n_keys, value_len);
    let servers = vec![Arc::clone(prism.server())];
    let ycsb = YcsbConfig {
        dist: KeyDist::uniform(n_keys),
        read_fraction,
        value_len,
    };
    let results = sweep_rates(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        knobs,
        cfg.seed,
        &cfg.faults,
        || {
            let prism = Rc::clone(&prism);
            let ycsb = ycsb.clone();
            Rc::new(RefCell::new(move |i: usize| {
                Box::new(PrismKvAdapter::new(
                    prism.open_client(),
                    ycsb.clone(),
                    SimRng::new(seed ^ ((i as u64 + 1) * 7919)),
                )) as Box<dyn ProtoAdapter>
            })) as AdapterFactory
        },
    );
    let mut t = Table::new(
        &format!(
            "Open-loop PRISM-KV latency under load ({} logical clients on {} aggregates, {:.0}% reads)",
            knobs.logical_clients,
            knobs.actors,
            cfg.read_fraction * 100.0
        ),
        &[
            "rate_Mops",
            "tput_Mops",
            "mean_us",
            "p50_us",
            "p99_us",
            "p999_us",
            "backlogged",
        ],
    );
    for (rate, r) in &results {
        t.row(&[
            mops(*rate),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p50_us),
            f2(r.p99_us),
            f2(r.p999_us),
            r.backlogged.to_string(),
        ]);
    }
    (t, results)
}

/// Sharded open-loop sweep: the same offered-load question asked of an
/// N-shard [`KvCluster`] instead of one server. Every adapter slot
/// routes per-key through the cluster's seeded shard map, so each
/// logical client's stream spreads across all N links and dispatch
/// pools; per-server connection tables still see at most
/// `knobs.live_slots()` connections (each live slot opens one
/// connection per shard), so the on-NIC budget holds at any shard
/// count without touching the knobs.
pub fn open_loop_sharded(
    cfg: &KvExpConfig,
    knobs: &OpenLoopKnobs,
    shards: usize,
) -> (Table, Vec<(f64, OpenLoopResult)>) {
    let mut prism_cfg = PrismKvConfig::paper(cfg.n_keys, cfg.value_len);
    // Same spare sizing as the single-server sweep: free batching is
    // per (live slot, shard), so each shard provisions for every slot.
    for class in &mut prism_cfg.classes {
        class.count += 32 * (knobs.live_slots() as u64 + 16);
    }
    let seed = cfg.seed;
    let n_keys = cfg.n_keys;
    let value_len = cfg.value_len;
    let read_fraction = cfg.read_fraction;
    // One cluster for the whole sweep, preloaded with each key on its
    // home shard only; points reopen recycled connection slots (see
    // `sweep_rates`).
    let cluster = Rc::new(KvCluster::new(shards, &prism_cfg, seed));
    cluster.preload(n_keys, value_len);
    let servers = cluster.servers();
    let ycsb = YcsbConfig {
        dist: KeyDist::uniform(n_keys),
        read_fraction,
        value_len,
    };
    let results = sweep_rates(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        knobs,
        cfg.seed,
        &cfg.faults,
        || {
            let cluster = Rc::clone(&cluster);
            let map = cluster.map();
            let ycsb = ycsb.clone();
            Rc::new(RefCell::new(move |i: usize| {
                Box::new(PrismKvAdapter::sharded(
                    cluster.open_clients(),
                    map.clone(),
                    ycsb.clone(),
                    SimRng::new(seed ^ ((i as u64 + 1) * 7919)),
                )) as Box<dyn ProtoAdapter>
            })) as AdapterFactory
        },
    );
    let mut t = Table::new(
        &format!(
            "Open-loop PRISM-KV latency under load ({} shards, {} logical clients on {} aggregates, {:.0}% reads)",
            shards,
            knobs.logical_clients,
            knobs.actors,
            cfg.read_fraction * 100.0
        ),
        &[
            "rate_Mops",
            "tput_Mops",
            "mean_us",
            "p50_us",
            "p99_us",
            "p999_us",
            "backlogged",
        ],
    );
    for (rate, r) in &results {
        t.row(&[
            mops(*rate),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p50_us),
            f2(r.p99_us),
            f2(r.p999_us),
            r.backlogged.to_string(),
        ]);
    }
    (t, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_prism_beats_pilaf_on_reads() {
        let cfg = KvExpConfig::quick(1.0);
        let (_t, peaks) = run(&cfg);
        // Single-client latency comparison happens inside sweep results;
        // here we assert the throughput ordering the paper reports:
        // PRISM-KV > Pilaf-HW > Pilaf-SW at saturation (Figure 3).
        assert!(
            peaks[0] > peaks[1],
            "PRISM {} vs Pilaf {}",
            peaks[0],
            peaks[1]
        );
        assert!(peaks[1] > peaks[2], "Pilaf HW vs SW");
    }

    #[test]
    fn figure3_latency_ordering_at_low_load() {
        // One client: PRISM GET (1 indirect read) must beat Pilaf
        // (2 reads + CRC) — the paper's "75% of Pilaf" claim.
        let mut cfg = KvExpConfig::quick(1.0);
        cfg.clients = vec![1];
        let (t, _) = run(&cfg);
        let csv = t.to_csv();
        let mut lat = std::collections::HashMap::new();
        for line in csv.lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            lat.insert(c[0].to_string(), c[3].parse::<f64>().unwrap());
        }
        let prism = lat["PRISM-KV"];
        let pilaf = lat["Pilaf"];
        assert!(prism < pilaf, "PRISM {prism} vs Pilaf {pilaf}");
        let ratio = prism / pilaf;
        assert!(
            (0.5..0.95).contains(&ratio),
            "PRISM/Pilaf latency ratio {ratio} (paper: ~0.75)"
        );
    }

    #[test]
    fn open_loop_kv_tracks_offered_load_when_unsaturated() {
        let cfg = KvExpConfig::quick(1.0);
        let knobs = OpenLoopKnobs::quick();
        let (_t, results) = open_loop(&cfg, &knobs);
        assert_eq!(results.len(), knobs.rates_per_sec.len());
        for (rate, r) in &results {
            assert!(r.completed > 0, "no completions at {rate} ops/s");
            assert!(r.mean_us > 0.0 && r.p99_us >= r.p50_us);
            // Below saturation an open-loop system completes what is
            // offered: delivered throughput within ±40 % of the rate
            // (Poisson noise over a short window is the slack).
            let ratio = r.tput_ops / rate;
            assert!(
                (0.6..1.4).contains(&ratio),
                "offered {rate} vs delivered {} (ratio {ratio})",
                r.tput_ops
            );
        }
    }
}
