//! Experiment harness for the PRISM reproduction.
//!
//! This crate regenerates every figure of the paper's evaluation by
//! running the *real* protocol implementations (the same state machines
//! and server memory the unit tests exercise) inside the discrete-event
//! simulator, with the calibrated cost model of
//! [`prism_simnet::latency`] attaching time to each message and each
//! server resource (link serialization, dispatch cores, PCIe).
//!
//! * [`netsim`] — the simulation glue: one [`netsim::ServerActor`] per
//!   host (owning its link shapers and 16-core service pool), one
//!   [`netsim::ClientActor`] per closed-loop client.
//! * [`adapters`] — per-system adapters turning each protocol client
//!   into the common [`netsim::ProtoAdapter`] interface.
//! * [`cluster`] — the scale-out layer: seeded rendezvous shard maps
//!   (with epochs in the incarnation-fencing shape) and N-server
//!   KV/RS topologies the sharded sweeps run against.
//! * [`micro`] — Figures 1 and 2 plus the §2.1 numbers (closed-form
//!   from the cost model).
//! * [`kv_exp`], [`rs_exp`], [`tx_exp`] — the application experiments
//!   (Figures 3–4, 6–7, 9–10).
//! * [`vsize_exp`] — an extension sweep (GET cost vs value size).
//! * [`openloop`] — the open-loop load engine: aggregate actors
//!   multiplexing up to 10⁶ logical clients with Poisson or trace
//!   arrivals, recording coordinated-omission-free latency.
//! * [`chaos`] — history-recording adapters and the Wing–Gong
//!   linearizability checker behind the chaos gate.
//! * [`table`] — plain-text table output shared by the `fig_*` binaries.
//! * [`smoke`] — env-tunable scale for the smoke-test configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod chaos;
pub mod cluster;
pub mod kv_exp;
pub mod micro;
pub mod netsim;
pub mod openloop;
pub mod rs_exp;
pub mod smoke;
pub mod table;
pub mod tx_exp;
pub mod vsize_exp;
