//! Scale-out cluster layer: seeded shard maps and N-server topologies.
//!
//! PRISM's evaluation runs each application against a single server (or
//! one replica group); this module grows the harness sideways into an
//! N-server cluster. Placement is a **seeded rendezvous (HRW) shard
//! map**: every shard gets a salt derived from the map seed, a key
//! lives on the shard whose salted hash of the key is largest. That
//! gives three properties the routing tests pin down:
//!
//! * **deterministic** — the same seed rebuilds byte-identical routing
//!   on every client, so there is no routing metadata to distribute
//!   (clients carry the `(seed, shards, epoch)` triple, nothing more);
//! * **balanced** — salted hashes are i.i.d. uniform per shard, so key
//!   load spreads within standard rendezvous tolerance;
//! * **minimal remap on grow** — adding shard N+1 only moves the keys
//!   whose new salted hash wins; keys never move *between* old shards.
//!
//! The map carries an **epoch** in the incarnation-fencing shape of the
//! RS rejoin protocol (§7.2): resizing returns a new map with `epoch +
//! 1`, so a future live-resharding protocol can fence requests routed
//! under a stale map exactly as amnesia-restarted replicas fence stale
//! rkeys today. Nothing in this PR reshards live — the epoch is carried
//! end-to-end so the wire shape is already right.
//!
//! Cross-shard **doorbell batching** lives in
//! [`prism_kv::batch::prism_kv_get_many_sharded`]: one logical
//! multi-GET fans out as one `Request::Batch` doorbell per home shard
//! per round, and [`KvCluster::get_many`] demonstrates it end-to-end.

use std::sync::Arc;

use prism_core::msg::execute_local;
use prism_core::PrismServer;
use prism_kv::batch::prism_kv_get_many_sharded;
use prism_kv::hash::key_bytes;
use prism_kv::prism_kv::{PrismKvClient, PrismKvConfig, PrismKvServer};
use prism_kv::{KvOutcome, KvStep};
use prism_rs::prism_rs::{RsClient, RsCluster, RsConfig};
use prism_workload::ycsb::value_bytes;

/// 64-bit finalizer (splitmix-style avalanche): turns the raw key hash
/// XOR shard salt into the rendezvous weight.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the key bytes — the same cheap, seedable hash family the
/// buffer-address sets use; the finalizer above does the avalanching.
fn key_hash(key: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01B3);
    }
    h
}

/// Seeded rendezvous shard map with an epoch field.
///
/// Cheap to clone (the per-shard salts are precomputed once); every
/// client holds its own copy and routes locally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    seed: u64,
    epoch: u64,
    salts: Vec<u64>,
}

impl ShardMap {
    /// A map over `shards` servers, derived entirely from `seed`
    /// (epoch starts at 1; 0 is reserved as "no map").
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, seed: u64) -> Self {
        assert!(shards > 0, "ShardMap::new: zero shards");
        ShardMap {
            seed,
            epoch: 1,
            salts: (0..shards as u64).map(|s| mix64(seed ^ (s + 1))).collect(),
        }
    }

    /// The degenerate single-shard map every pre-cluster adapter uses.
    pub fn single() -> Self {
        ShardMap::new(1, 0)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.salts.len()
    }

    /// Map epoch (bumped by [`ShardMap::grow`], never reused).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The seed the salts derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Home shard of `key`: rendezvous argmax over the salted hashes.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let h = key_hash(key);
        let mut best = 0usize;
        let mut best_w = mix64(h ^ self.salts[0]);
        for (s, &salt) in self.salts.iter().enumerate().skip(1) {
            let w = mix64(h ^ salt);
            if w > best_w {
                best_w = w;
                best = s;
            }
        }
        best
    }

    /// Home shard of a numeric id (blocks, 64-bit keys).
    pub fn shard_of_id(&self, id: u64) -> usize {
        self.shard_of(&id.to_le_bytes())
    }

    /// A resized map under the same seed with the epoch bumped — the
    /// static half of live resharding. Keys whose home survives keep
    /// it (rendezvous minimal-remap); the epoch bump is what a
    /// resharding protocol would fence stale-routed requests with.
    pub fn grow(&self, shards: usize) -> Self {
        assert!(shards > 0, "ShardMap::grow: zero shards");
        ShardMap {
            seed: self.seed,
            epoch: self.epoch + 1,
            salts: (0..shards as u64)
                .map(|s| mix64(self.seed ^ (s + 1)))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// PRISM-KV cluster
// ---------------------------------------------------------------------

/// N independent PRISM-KV servers behind one shard map.
///
/// Each shard is a complete single-server store; the cluster adds no
/// server-side coordination (exactly the paper's deployment shape —
/// PRISM keeps servers passive, so scale-out is pure client routing).
pub struct KvCluster {
    shards: Vec<PrismKvServer>,
    map: ShardMap,
}

impl KvCluster {
    /// Builds `n` identically-configured shards and a map seeded with
    /// `seed`.
    pub fn new(n: usize, config: &PrismKvConfig, seed: u64) -> Self {
        KvCluster {
            shards: (0..n).map(|_| PrismKvServer::new(config)).collect(),
            map: ShardMap::new(n, seed),
        }
    }

    /// The shard map (clients clone it for local routing).
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// One shard's store.
    pub fn shard(&self, i: usize) -> &PrismKvServer {
        &self.shards[i]
    }

    /// The flat server list in shard order (what the simulation's
    /// per-host actors bind to).
    pub fn servers(&self) -> Vec<Arc<PrismServer>> {
        self.shards.iter().map(|s| Arc::clone(s.server())).collect()
    }

    /// One client per shard, in shard order — a routed adapter holds
    /// the whole vector and indexes it with [`ShardMap::shard_of`].
    pub fn open_clients(&self) -> Vec<PrismKvClient> {
        self.shards.iter().map(|s| s.open_client()).collect()
    }

    /// YCSB load phase, routed: each key is preloaded on its home
    /// shard only (the cluster holds one copy of every key, not N).
    pub fn preload(&self, n_keys: u64, value_len: usize) {
        let clients = self.open_clients();
        for k in 0..n_keys {
            let key = key_bytes(k);
            let home = self.map.shard_of(&key);
            let server = self.shards[home].server();
            let value = value_bytes(k, 0, value_len);
            let (mut op, req) = clients[home].put(&key, &value);
            let mut reply = execute_local(server, &req);
            loop {
                match op.on_reply(&clients[home], reply) {
                    KvStep::Send {
                        request,
                        background,
                    } => {
                        if let Some(b) = background {
                            execute_local(server, &b);
                        }
                        reply = execute_local(server, &request);
                    }
                    KvStep::Done { background, .. } => {
                        if let Some(b) = background {
                            execute_local(server, &b);
                        }
                        break;
                    }
                }
            }
        }
    }

    /// Cross-shard doorbell-batched multi-GET: one logical batch fans
    /// out as one doorbell per home shard per round, completions merge
    /// back into key order. Returns the outcomes and the doorbell
    /// count.
    pub fn get_many(&self, keys: &[Vec<u8>]) -> (Vec<KvOutcome>, u64) {
        let clients = self.open_clients();
        let (outcomes, doorbells, _rounds) = prism_kv_get_many_sharded(
            &clients,
            |k| self.map.shard_of(k),
            keys,
            |shard, req| execute_local(self.shards[shard].server(), &req),
        );
        (outcomes, doorbells)
    }
}

// ---------------------------------------------------------------------
// PRISM-RS sharded groups
// ---------------------------------------------------------------------

/// S independent 3-replica PRISM-RS groups behind one shard map.
///
/// Blocks are routed to a *group*; inside the group the full quorum
/// protocol runs unchanged. The flat server index of group `g`'s
/// replica `r` is `g * replicas + r` — the layout
/// [`crate::adapters::PrismRsAdapter`] encodes in its reply tags so
/// stragglers of a completed op still find their group.
pub struct RsShards {
    groups: Vec<RsCluster>,
    replicas: usize,
    map: ShardMap,
}

impl RsShards {
    /// Builds `groups` clusters of `replicas` each.
    pub fn new(groups: usize, replicas: usize, config: &RsConfig, seed: u64) -> Self {
        RsShards {
            groups: (0..groups)
                .map(|_| RsCluster::new(replicas, config))
                .collect(),
            replicas,
            map: ShardMap::new(groups, seed),
        }
    }

    /// The group-level shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Replicas per group.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// One group.
    pub fn group(&self, g: usize) -> &RsCluster {
        &self.groups[g]
    }

    /// Flat server list, group-major (`g * replicas + r`).
    pub fn servers(&self) -> Vec<Arc<PrismServer>> {
        self.groups
            .iter()
            .flat_map(|c| (0..self.replicas).map(|r| Arc::clone(c.replica(r).server())))
            .collect()
    }

    /// One client per group, in group order.
    pub fn open_clients(&self) -> Vec<RsClient> {
        self.groups.iter().map(|c| c.open_client()).collect()
    }

    /// Amnesia-restarts the replica at flat server index `i` and runs
    /// its group's rejoin protocol (the chaos gate's restart hook).
    pub fn amnesia_restart(&self, i: usize) -> u64 {
        self.groups[i / self.replicas].amnesia_restart(i % self.replicas)
    }

    /// Total rejoins across groups.
    pub fn rejoins(&self) -> u64 {
        self.groups.iter().map(|c| c.rejoins()).sum()
    }

    /// Total quorum resyncs across groups.
    pub fn resyncs(&self) -> u64 {
        self.groups.iter().map(|c| c.resyncs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// CI seed override, as in the fault matrix and chaos gate: the
    /// routing properties must hold at *every* seed, so the gate runs
    /// them at two.
    fn seed() -> u64 {
        std::env::var("PRISM_TEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42)
    }

    #[test]
    fn routing_is_deterministic_across_rebuilds() {
        let seed = seed();
        let a = ShardMap::new(8, seed);
        let b = ShardMap::new(8, seed);
        assert_eq!(a, b, "same seed must rebuild the same map");
        for k in 0..10_000u64 {
            let key = key_bytes(k);
            assert_eq!(a.shard_of(&key), b.shard_of(&key));
        }
        // A different seed routes differently somewhere (overwhelming
        // probability over 10k keys — a collision here means the salts
        // are being ignored).
        let c = ShardMap::new(8, seed ^ 0xDEAD_BEEF);
        assert!(
            (0..10_000u64).any(|k| a.shard_of(&key_bytes(k)) != c.shard_of(&key_bytes(k))),
            "seed must actually perturb routing"
        );
    }

    #[test]
    fn load_balances_within_rendezvous_tolerance() {
        let seed = seed();
        for shards in [2usize, 4, 8] {
            let map = ShardMap::new(shards, seed);
            let n = 100_000u64;
            let mut counts = vec![0u64; shards];
            for k in 0..n {
                counts[map.shard_of(&key_bytes(k))] += 1;
            }
            let expect = n as f64 / shards as f64;
            for (s, &c) in counts.iter().enumerate() {
                let skew = (c as f64 - expect).abs() / expect;
                assert!(
                    skew < 0.05,
                    "shard {s}/{shards}: {c} keys vs {expect:.0} expected ({:.1}% skew)",
                    skew * 100.0
                );
            }
        }
    }

    #[test]
    fn same_count_rebuild_is_a_stable_remap() {
        // Rebuilding the map at the same shard count (e.g. after a
        // config reload) must not move a single key.
        let seed = seed();
        let a = ShardMap::new(4, seed);
        let regrown = a.grow(4);
        assert_eq!(regrown.epoch(), 2, "grow always bumps the epoch");
        for k in 0..10_000u64 {
            let key = key_bytes(k);
            assert_eq!(
                a.shard_of(&key),
                regrown.shard_of(&key),
                "unchanged shard count must keep every placement"
            );
        }
    }

    #[test]
    fn growing_moves_keys_only_onto_new_shards() {
        let seed = seed();
        let old = ShardMap::new(4, seed);
        let new = old.grow(6);
        assert_eq!(new.epoch(), old.epoch() + 1);
        let n = 50_000u64;
        let mut moved = 0u64;
        for k in 0..n {
            let key = key_bytes(k);
            let (from, to) = (old.shard_of(&key), new.shard_of(&key));
            if from != to {
                assert!(
                    to >= 4,
                    "key {k} moved between surviving shards {from}->{to}: rendezvous \
                     minimal-remap violated"
                );
                moved += 1;
            }
        }
        // Expected churn is 2/6 of the keyspace; accept a wide band.
        let frac = moved as f64 / n as f64;
        assert!(
            frac > 0.20 && frac < 0.45,
            "grow 4->6 moved {:.1}% of keys (expected ~33%)",
            frac * 100.0
        );
    }

    #[test]
    fn kv_cluster_routes_preload_and_get_many() {
        let seed = seed();
        let n_keys = 256u64;
        let config = PrismKvConfig::paper(n_keys, 64);
        let cluster = KvCluster::new(4, &config, seed);
        cluster.preload(n_keys, 64);

        // Each key lives on exactly its home shard: per-shard key
        // counts sum to n_keys (no key is duplicated or dropped).
        let mut per_shard: HashMap<usize, u64> = HashMap::new();
        for k in 0..n_keys {
            *per_shard
                .entry(cluster.map().shard_of(&key_bytes(k)))
                .or_default() += 1;
        }
        assert_eq!(per_shard.values().sum::<u64>(), n_keys);
        assert!(per_shard.len() > 1, "256 keys must touch several shards");

        // A cross-shard multi-GET returns every value and rings one
        // doorbell per involved shard (single round for PRISM-KV).
        let keys: Vec<Vec<u8>> = (0..32u64).map(|k| key_bytes(k).to_vec()).collect();
        let homes: std::collections::HashSet<usize> =
            keys.iter().map(|k| cluster.map().shard_of(k)).collect();
        let (outcomes, doorbells) = cluster.get_many(&keys);
        for (k, o) in outcomes.iter().enumerate() {
            assert_eq!(
                *o,
                KvOutcome::Value(Some(value_bytes(k as u64, 0, 64))),
                "key {k} must read back its preloaded value"
            );
        }
        assert_eq!(
            doorbells,
            homes.len() as u64,
            "one doorbell per home shard, not per key"
        );
    }

    #[test]
    fn rs_shards_flat_indexing_reaches_every_replica() {
        let config = RsConfig::paper(8, 64);
        let shards = RsShards::new(2, 3, &config, seed());
        assert_eq!(shards.servers().len(), 6);
        // Amnesia-restart via a flat index lands in the right group.
        assert_eq!(shards.rejoins(), 0);
        shards.amnesia_restart(4); // group 1, replica 1
        assert_eq!(shards.group(1).rejoins(), 1);
        assert_eq!(shards.group(0).rejoins(), 0);
        assert_eq!(shards.rejoins(), 1);
    }
}
