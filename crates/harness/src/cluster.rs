//! Scale-out cluster layer: seeded shard maps and N-server topologies.
//!
//! PRISM's evaluation runs each application against a single server (or
//! one replica group); this module grows the harness sideways into an
//! N-server cluster. Placement is a **seeded rendezvous (HRW) shard
//! map**: every shard gets a salt derived from the map seed, a key
//! lives on the shard whose salted hash of the key is largest. That
//! gives three properties the routing tests pin down:
//!
//! * **deterministic** — the same seed rebuilds byte-identical routing
//!   on every client, so there is no routing metadata to distribute
//!   (clients carry the `(seed, shards, epoch)` triple, nothing more);
//! * **balanced** — salted hashes are i.i.d. uniform per shard, so key
//!   load spreads within standard rendezvous tolerance;
//! * **minimal remap on grow** — adding shard N+1 only moves the keys
//!   whose new salted hash wins; keys never move *between* old shards.
//!
//! The map carries an **epoch** in the incarnation-fencing shape of the
//! RS rejoin protocol (§7.2): resizing returns a new map with `epoch +
//! 1`, servers enforce it ([`prism_core::PrismServer::install_epoch`]),
//! and requests routed under a stale map are fenced with
//! [`prism_rdma::RdmaError::StaleEpoch`] exactly as amnesia-restarted
//! replicas fence stale rkeys. Live resharding is the
//! [`KvCluster::migrate_grow`] / [`RsShards::migrate_grow`] drivers:
//! grow the map, stream moved keys to their new homes via the normal
//! chained-READ / CAS-install client machinery, fence the old owners
//! per moved key, install the new epoch on every server, then publish
//! the new map through the cluster's shared [`MapHandle`].
//!
//! Cross-shard **doorbell batching** lives in
//! [`prism_kv::batch::prism_kv_get_many_sharded`]: one logical
//! multi-GET fans out as one `Request::Batch` doorbell per home shard
//! per round, and [`KvCluster::get_many`] demonstrates it end-to-end.

use std::sync::Arc;

use prism_core::msg::{execute_local, Reply, Request};
use prism_core::PrismServer;
use prism_kv::batch::prism_kv_get_many_sharded;
use prism_kv::hash::key_bytes;
use prism_kv::prism_kv::{GetOp, PrismKvClient, PrismKvConfig, PrismKvServer, PutOp};
use prism_kv::{KvOutcome, KvStep};
use prism_rdma::sync::Mutex;
use prism_rs::prism_rs::{drive as rs_drive, RsClient, RsCluster, RsConfig, RsOutcome};
use prism_rs::tag::Tag;
use prism_store::DurableStats;
use prism_workload::ycsb::value_bytes;

/// 64-bit finalizer (splitmix-style avalanche): turns the raw key hash
/// XOR shard salt into the rendezvous weight.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the key bytes — the same cheap, seedable hash family the
/// buffer-address sets use; the finalizer above does the avalanching.
fn key_hash(key: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01B3);
    }
    h
}

/// Seeded rendezvous shard map with an epoch field.
///
/// Cheap to clone (the per-shard salts are precomputed once); every
/// client holds its own copy and routes locally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    seed: u64,
    epoch: u64,
    salts: Vec<u64>,
}

impl ShardMap {
    /// A map over `shards` servers, derived entirely from `seed`
    /// (epoch starts at 1; 0 is reserved as "no map").
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, seed: u64) -> Self {
        assert!(shards > 0, "ShardMap::new: zero shards");
        ShardMap {
            seed,
            epoch: 1,
            salts: (0..shards as u64).map(|s| mix64(seed ^ (s + 1))).collect(),
        }
    }

    /// The degenerate single-shard map every pre-cluster adapter uses.
    pub fn single() -> Self {
        ShardMap::new(1, 0)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.salts.len()
    }

    /// Map epoch (bumped by [`ShardMap::grow`], never reused).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The seed the salts derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Home shard of `key`: rendezvous argmax over the salted hashes.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let h = key_hash(key);
        let mut best = 0usize;
        let mut best_w = mix64(h ^ self.salts[0]);
        for (s, &salt) in self.salts.iter().enumerate().skip(1) {
            let w = mix64(h ^ salt);
            if w > best_w {
                best_w = w;
                best = s;
            }
        }
        best
    }

    /// Home shard of a numeric id (blocks, 64-bit keys).
    pub fn shard_of_id(&self, id: u64) -> usize {
        self.shard_of(&id.to_le_bytes())
    }

    /// A resized map under the same seed with the epoch bumped — the
    /// static half of live resharding. Keys whose home survives keep
    /// it (rendezvous minimal-remap); the epoch bump is what a
    /// resharding protocol would fence stale-routed requests with.
    pub fn grow(&self, shards: usize) -> Self {
        assert!(shards > 0, "ShardMap::grow: zero shards");
        ShardMap {
            seed: self.seed,
            epoch: self.epoch + 1,
            salts: (0..shards as u64)
                .map(|s| mix64(self.seed ^ (s + 1)))
                .collect(),
        }
    }
}

/// The cluster's shared, mutable "current map" cell.
///
/// Every routed client holds a clone; the migration driver publishes a
/// grown map through it, and a client that gets a
/// [`prism_rdma::RdmaError::StaleEpoch`] NACK refetches its snapshot
/// here — the moral equivalent of re-reading the map from the
/// configuration service after a reconfiguration fence.
#[derive(Debug, Clone)]
pub struct MapHandle(Arc<Mutex<ShardMap>>);

impl MapHandle {
    /// Wraps an initial map.
    pub fn new(map: ShardMap) -> Self {
        MapHandle(Arc::new(Mutex::new(map)))
    }

    /// The current map (cheap clone — salts are a small vector).
    pub fn snapshot(&self) -> ShardMap {
        self.0.lock().clone()
    }

    /// The current map's epoch.
    pub fn epoch(&self) -> u64 {
        self.0.lock().epoch()
    }

    /// Publishes a new map. Epochs only move forward; a straggling
    /// installer cannot roll the routing back.
    pub fn install(&self, map: ShardMap) {
        let mut cur = self.0.lock();
        if map.epoch() > cur.epoch() {
            *cur = map;
        }
    }
}

// ---------------------------------------------------------------------
// PRISM-KV cluster
// ---------------------------------------------------------------------

/// N independent PRISM-KV servers behind one shard map.
///
/// Each shard is a complete single-server store; the cluster adds no
/// server-side coordination (exactly the paper's deployment shape —
/// PRISM keeps servers passive, so scale-out is pure client routing).
pub struct KvCluster {
    shards: Vec<PrismKvServer>,
    handle: MapHandle,
    durable: Arc<DurableStats>,
}

impl KvCluster {
    /// Builds `n` identically-configured shards and a map seeded with
    /// `seed`.
    pub fn new(n: usize, config: &PrismKvConfig, seed: u64) -> Self {
        KvCluster::with_active(n, n, config, seed)
    }

    /// Builds `total` shards but routes over only the first `active` —
    /// the pre-provisioned topology a live [`KvCluster::migrate_grow`]
    /// expands into. Every server (active or standby) learns the map's
    /// epoch at build time.
    pub fn with_active(total: usize, active: usize, config: &PrismKvConfig, seed: u64) -> Self {
        assert!(active >= 1 && active <= total, "active shards out of range");
        let durable = Arc::new(DurableStats::new());
        let shards: Vec<PrismKvServer> = (0..total)
            .map(|_| {
                let mut s = PrismKvServer::new(config);
                s.set_durable_stats(Arc::clone(&durable));
                s
            })
            .collect();
        let map = ShardMap::new(active, seed);
        for s in &shards {
            s.server().install_epoch(map.epoch());
        }
        KvCluster {
            shards,
            handle: MapHandle::new(map),
            durable,
        }
    }

    /// The cluster's durable-recovery counters (shared by every shard;
    /// the harness folds these into `RunResult`).
    pub fn durable_stats(&self) -> &Arc<DurableStats> {
        &self.durable
    }

    /// Amnesia-restarts shard `i` and replays its segment log (the
    /// chaos gate's restart hook). Returns the shard's new incarnation.
    pub fn amnesia_restart(&self, i: usize) -> u64 {
        self.shards[i].amnesia_restart()
    }

    /// The current shard map (clients clone it for local routing; under
    /// live resharding, hold the [`KvCluster::map_handle`] instead and
    /// refetch on a stale-epoch fence).
    pub fn map(&self) -> ShardMap {
        self.handle.snapshot()
    }

    /// The shared current-map cell.
    pub fn map_handle(&self) -> MapHandle {
        self.handle.clone()
    }

    /// One shard's store.
    pub fn shard(&self, i: usize) -> &PrismKvServer {
        &self.shards[i]
    }

    /// The flat server list in shard order (what the simulation's
    /// per-host actors bind to).
    pub fn servers(&self) -> Vec<Arc<PrismServer>> {
        self.shards.iter().map(|s| Arc::clone(s.server())).collect()
    }

    /// One client per shard, in shard order — a routed adapter holds
    /// the whole vector and indexes it with [`ShardMap::shard_of`].
    pub fn open_clients(&self) -> Vec<PrismKvClient> {
        self.shards.iter().map(|s| s.open_client()).collect()
    }

    /// YCSB load phase, routed: each key is preloaded on its home
    /// shard only (the cluster holds one copy of every key, not N).
    pub fn preload(&self, n_keys: u64, value_len: usize) {
        let clients = self.open_clients();
        let map = self.map();
        for k in 0..n_keys {
            let key = key_bytes(k);
            let home = map.shard_of(&key);
            let value = value_bytes(k, 0, value_len);
            let (op, req) = clients[home].put(&key, &value);
            drive_kv(self.shards[home].server(), &clients[home], op, req);
        }
    }

    /// Live 2→N resharding: grows the map over the first `to` shards,
    /// streams every moved key from its old home to its new one (chained
    /// PRISM READ out, CAS install in — the ordinary client machinery),
    /// fences the old owner per moved key with a routed DELETE, installs
    /// the new epoch on **every** server, and only then publishes the
    /// new map. Returns `(new_map, moved_keys)`.
    ///
    /// Run from the simulation's control plane this whole sequence is
    /// atomic at one instant, so in-flight requests stamped with the old
    /// epoch arrive after the flip and are fenced with
    /// [`prism_rdma::RdmaError::StaleEpoch`]; their clients refetch the
    /// map through the [`MapHandle`] and reroute.
    pub fn migrate_grow<'k>(
        &self,
        to: usize,
        keys: impl IntoIterator<Item = &'k [u8]>,
    ) -> (ShardMap, u64) {
        assert!(to <= self.shards.len(), "grow beyond provisioned shards");
        let old = self.map();
        let new = old.grow(to);
        let clients = self.open_clients();
        let mut moved = 0u64;
        for key in keys {
            let (from, dest) = (old.shard_of(key), new.shard_of(key));
            if from == dest {
                continue;
            }
            // Chained READ out of the old home.
            let (op, req) = clients[from].get(key);
            let out = drive_kv(self.shards[from].server(), &clients[from], op, req);
            let value = match out {
                KvOutcome::Value(Some(v)) => v,
                KvOutcome::Value(None) => continue, // never written: nothing to move
                KvOutcome::Failed(why) => panic!("migration read of moved key failed: {why}"),
                KvOutcome::Written => unreachable!("GET cannot return Written"),
            };
            // CAS install into the new home.
            let (op, req) = clients[dest].put(key, &value);
            drive_kv(self.shards[dest].server(), &clients[dest], op, req);
            // Fence the old owner: the key's index slot is cleared, so
            // even a raw access that bypassed the epoch fence reads
            // "absent" rather than a stale value; the displaced buffer
            // is reclaimed through the normal delete path.
            let (op, req) = clients[from].delete(key);
            drive_kv(self.shards[from].server(), &clients[from], op, req);
            moved += 1;
        }
        for s in &self.shards {
            s.server().install_epoch(new.epoch());
        }
        self.handle.install(new.clone());
        (new, moved)
    }

    /// Cross-shard doorbell-batched multi-GET: one logical batch fans
    /// out as one doorbell per home shard per round, completions merge
    /// back into key order. Returns the outcomes and the doorbell
    /// count.
    pub fn get_many(&self, keys: &[Vec<u8>]) -> (Vec<KvOutcome>, u64) {
        let clients = self.open_clients();
        let map = self.map();
        let (outcomes, doorbells, _rounds) = prism_kv_get_many_sharded(
            &clients,
            |k| map.shard_of(k),
            keys,
            |shard, req| execute_local(self.shards[shard].server(), &req),
        );
        (outcomes, doorbells)
    }
}

/// Driver glue: the GET and PUT machines share an `on_reply` shape but
/// no trait in `prism_kv`; this local trait lets one loop drive both.
trait KvMachine {
    fn feed(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep;
}

impl KvMachine for GetOp {
    fn feed(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep {
        self.on_reply(c, reply)
    }
}

impl KvMachine for PutOp {
    fn feed(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep {
        self.on_reply(c, reply)
    }
}

/// Drives one KV op machine to completion against a local server,
/// executing background frees as they surface (the control-plane analog
/// of [`prism_rs::prism_rs::drive`]).
fn drive_kv(
    server: &Arc<PrismServer>,
    client: &PrismKvClient,
    mut op: impl KvMachine,
    first: Request,
) -> KvOutcome {
    let mut reply = execute_local(server, &first);
    loop {
        match op.feed(client, reply) {
            KvStep::Send {
                request,
                background,
            } => {
                if let Some(b) = background {
                    execute_local(server, &b);
                }
                reply = execute_local(server, &request);
            }
            KvStep::Done {
                outcome,
                background,
            } => {
                if let Some(b) = background {
                    execute_local(server, &b);
                }
                return outcome;
            }
        }
    }
}

// ---------------------------------------------------------------------
// PRISM-RS sharded groups
// ---------------------------------------------------------------------

/// S independent 3-replica PRISM-RS groups behind one shard map.
///
/// Blocks are routed to a *group*; inside the group the full quorum
/// protocol runs unchanged. The flat server index of group `g`'s
/// replica `r` is `g * replicas + r` — the layout
/// [`crate::adapters::PrismRsAdapter`] encodes in its reply tags so
/// stragglers of a completed op still find their group.
pub struct RsShards {
    groups: Vec<RsCluster>,
    replicas: usize,
    handle: MapHandle,
    durable: Arc<DurableStats>,
}

impl RsShards {
    /// Builds `groups` clusters of `replicas` each.
    pub fn new(groups: usize, replicas: usize, config: &RsConfig, seed: u64) -> Self {
        RsShards::with_active(groups, groups, replicas, config, seed)
    }

    /// Builds `total` groups but routes over only the first `active` —
    /// the pre-provisioned topology a live [`RsShards::migrate_grow`]
    /// expands into. Flat server indices (`group * replicas + r`) cover
    /// all `total` groups from the start, so growing never renumbers a
    /// server. Every replica learns the map's epoch at build time.
    pub fn with_active(
        total: usize,
        active: usize,
        replicas: usize,
        config: &RsConfig,
        seed: u64,
    ) -> Self {
        assert!(active >= 1 && active <= total, "active groups out of range");
        let durable = Arc::new(DurableStats::new());
        let groups: Vec<RsCluster> = (0..total)
            .map(|_| {
                let mut c = RsCluster::new(replicas, config);
                c.set_durable_stats(Arc::clone(&durable));
                c
            })
            .collect();
        let map = ShardMap::new(active, seed);
        for g in &groups {
            for r in 0..replicas {
                g.replica(r).server().install_epoch(map.epoch());
            }
        }
        RsShards {
            groups,
            replicas,
            handle: MapHandle::new(map),
            durable,
        }
    }

    /// The shard set's durable-recovery counters (shared by every
    /// group; the harness folds these into `RunResult`).
    pub fn durable_stats(&self) -> &Arc<DurableStats> {
        &self.durable
    }

    /// The current group-level shard map.
    pub fn map(&self) -> ShardMap {
        self.handle.snapshot()
    }

    /// The shared current-map cell.
    pub fn map_handle(&self) -> MapHandle {
        self.handle.clone()
    }

    /// Live resharding for replicated groups: grows the map over the
    /// first `to` groups, streams every moved block through the normal
    /// quorum machinery (chained-READ quorum read from the old group,
    /// CAS install into the new group), fences the old owners per moved
    /// block, installs the new epoch on **every** replica of every
    /// group, then publishes the new map. Returns `(new_map,
    /// moved_blocks)`.
    ///
    /// The per-block fence writes `[Tag::MAX | null addr]` into each
    /// old-group replica's metadata entry: a straggling writer's
    /// tag-ordered CAS can never beat `Tag::MAX`, and a straggling
    /// reader's indirect READ through the null address is a
    /// [`prism_rdma::RdmaError::BadIndirectTarget`] NACK instead of a
    /// stale value — defense in depth behind the epoch fence. The
    /// displaced buffers become unreachable and are reclaimed by each
    /// old replica's [`prism_rs::prism_rs::PrismRsServer::gc_sweep`].
    pub fn migrate_grow(&self, to: usize) -> (ShardMap, u64) {
        assert!(to <= self.groups.len(), "grow beyond provisioned groups");
        let old = self.map();
        let new = old.grow(to);
        let clients: Vec<RsClient> = self.open_clients();
        let healthy = vec![false; self.replicas];
        let n_blocks = self.groups[0].replica(0).view().n_blocks;
        let fence = {
            let mut m = Vec::with_capacity(16);
            m.extend_from_slice(&Tag::MAX.to_bytes());
            m.extend_from_slice(&0u64.to_le_bytes());
            m
        };
        let mut moved = 0u64;
        let mut fenced_groups: Vec<usize> = Vec::new();
        for b in 0..n_blocks {
            let (from, dest) = (old.shard_of_id(b), new.shard_of_id(b));
            if from == dest {
                continue;
            }
            // Quorum read from the old group (chained indirect READs).
            let (op, step) = clients[from].get(b);
            let value = match rs_drive(&self.groups[from], &clients[from], op, step, &healthy) {
                RsOutcome::Value(v) => v,
                other => panic!("migration read of moved block {b} failed: {other:?}"),
            };
            // CAS install into every replica of the new group.
            let (op, step) = clients[dest].put(b, value);
            match rs_drive(&self.groups[dest], &clients[dest], op, step, &healthy) {
                RsOutcome::Written => {}
                other => panic!("migration install of moved block {b} failed: {other:?}"),
            }
            // Fence the old owners — in memory and in the log. The
            // arena write is a direct control-plane poke the chain
            // observer never sees, so the durable fence record is
            // logged explicitly: without it, an old owner's amnesia
            // replay would resurrect the moved block from its pre-fence
            // install records.
            for r in 0..self.replicas {
                let replica = self.groups[from].replica(r);
                replica
                    .server()
                    .arena()
                    .write(replica.view().meta(b), &fence)
                    .expect("metadata in arena");
                replica.log_fence(b, new.epoch());
            }
            if !fenced_groups.contains(&from) {
                fenced_groups.push(from);
            }
            moved += 1;
        }
        // Reclaim the buffers the fences orphaned on the old groups.
        for g in fenced_groups {
            for r in 0..self.replicas {
                self.groups[g].replica(r).gc_sweep();
            }
        }
        for g in &self.groups {
            for r in 0..self.replicas {
                g.replica(r).server().install_epoch(new.epoch());
            }
        }
        self.handle.install(new.clone());
        (new, moved)
    }

    /// Replicas per group.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// One group.
    pub fn group(&self, g: usize) -> &RsCluster {
        &self.groups[g]
    }

    /// Flat server list, group-major (`g * replicas + r`).
    pub fn servers(&self) -> Vec<Arc<PrismServer>> {
        self.groups
            .iter()
            .flat_map(|c| (0..self.replicas).map(|r| Arc::clone(c.replica(r).server())))
            .collect()
    }

    /// One client per group, in group order.
    pub fn open_clients(&self) -> Vec<RsClient> {
        self.groups.iter().map(|c| c.open_client()).collect()
    }

    /// Amnesia-restarts the replica at flat server index `i` and runs
    /// its group's rejoin protocol (the chaos gate's restart hook).
    pub fn amnesia_restart(&self, i: usize) -> u64 {
        self.groups[i / self.replicas].amnesia_restart(i % self.replicas)
    }

    /// Total rejoins across groups.
    pub fn rejoins(&self) -> u64 {
        self.groups.iter().map(|c| c.rejoins()).sum()
    }

    /// Total quorum resyncs across groups.
    pub fn resyncs(&self) -> u64 {
        self.groups.iter().map(|c| c.resyncs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// CI seed override, as in the fault matrix and chaos gate: the
    /// routing properties must hold at *every* seed, so the gate runs
    /// them at two.
    fn seed() -> u64 {
        std::env::var("PRISM_TEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42)
    }

    #[test]
    fn routing_is_deterministic_across_rebuilds() {
        let seed = seed();
        let a = ShardMap::new(8, seed);
        let b = ShardMap::new(8, seed);
        assert_eq!(a, b, "same seed must rebuild the same map");
        for k in 0..10_000u64 {
            let key = key_bytes(k);
            assert_eq!(a.shard_of(&key), b.shard_of(&key));
        }
        // A different seed routes differently somewhere (overwhelming
        // probability over 10k keys — a collision here means the salts
        // are being ignored).
        let c = ShardMap::new(8, seed ^ 0xDEAD_BEEF);
        assert!(
            (0..10_000u64).any(|k| a.shard_of(&key_bytes(k)) != c.shard_of(&key_bytes(k))),
            "seed must actually perturb routing"
        );
    }

    #[test]
    fn load_balances_within_rendezvous_tolerance() {
        let seed = seed();
        for shards in [2usize, 4, 8] {
            let map = ShardMap::new(shards, seed);
            let n = 100_000u64;
            let mut counts = vec![0u64; shards];
            for k in 0..n {
                counts[map.shard_of(&key_bytes(k))] += 1;
            }
            let expect = n as f64 / shards as f64;
            for (s, &c) in counts.iter().enumerate() {
                let skew = (c as f64 - expect).abs() / expect;
                assert!(
                    skew < 0.05,
                    "shard {s}/{shards}: {c} keys vs {expect:.0} expected ({:.1}% skew)",
                    skew * 100.0
                );
            }
        }
    }

    #[test]
    fn same_count_rebuild_is_a_stable_remap() {
        // Rebuilding the map at the same shard count (e.g. after a
        // config reload) must not move a single key.
        let seed = seed();
        let a = ShardMap::new(4, seed);
        let regrown = a.grow(4);
        assert_eq!(regrown.epoch(), 2, "grow always bumps the epoch");
        for k in 0..10_000u64 {
            let key = key_bytes(k);
            assert_eq!(
                a.shard_of(&key),
                regrown.shard_of(&key),
                "unchanged shard count must keep every placement"
            );
        }
    }

    #[test]
    fn growing_moves_keys_only_onto_new_shards() {
        let seed = seed();
        let old = ShardMap::new(4, seed);
        let new = old.grow(6);
        assert_eq!(new.epoch(), old.epoch() + 1);
        let n = 50_000u64;
        let mut moved = 0u64;
        for k in 0..n {
            let key = key_bytes(k);
            let (from, to) = (old.shard_of(&key), new.shard_of(&key));
            if from != to {
                assert!(
                    to >= 4,
                    "key {k} moved between surviving shards {from}->{to}: rendezvous \
                     minimal-remap violated"
                );
                moved += 1;
            }
        }
        // Expected churn is 2/6 of the keyspace; accept a wide band.
        let frac = moved as f64 / n as f64;
        assert!(
            frac > 0.20 && frac < 0.45,
            "grow 4->6 moved {:.1}% of keys (expected ~33%)",
            frac * 100.0
        );
    }

    #[test]
    fn kv_cluster_routes_preload_and_get_many() {
        let seed = seed();
        let n_keys = 256u64;
        let config = PrismKvConfig::paper(n_keys, 64);
        let cluster = KvCluster::new(4, &config, seed);
        cluster.preload(n_keys, 64);

        // Each key lives on exactly its home shard: per-shard key
        // counts sum to n_keys (no key is duplicated or dropped).
        let mut per_shard: HashMap<usize, u64> = HashMap::new();
        for k in 0..n_keys {
            *per_shard
                .entry(cluster.map().shard_of(&key_bytes(k)))
                .or_default() += 1;
        }
        assert_eq!(per_shard.values().sum::<u64>(), n_keys);
        assert!(per_shard.len() > 1, "256 keys must touch several shards");

        // A cross-shard multi-GET returns every value and rings one
        // doorbell per involved shard (single round for PRISM-KV).
        let keys: Vec<Vec<u8>> = (0..32u64).map(|k| key_bytes(k).to_vec()).collect();
        let homes: std::collections::HashSet<usize> =
            keys.iter().map(|k| cluster.map().shard_of(k)).collect();
        let (outcomes, doorbells) = cluster.get_many(&keys);
        for (k, o) in outcomes.iter().enumerate() {
            assert_eq!(
                *o,
                KvOutcome::Value(Some(value_bytes(k as u64, 0, 64))),
                "key {k} must read back its preloaded value"
            );
        }
        assert_eq!(
            doorbells,
            homes.len() as u64,
            "one doorbell per home shard, not per key"
        );
    }

    #[test]
    fn rs_shards_flat_indexing_reaches_every_replica() {
        let config = RsConfig::paper(8, 64);
        let shards = RsShards::new(2, 3, &config, seed());
        assert_eq!(shards.servers().len(), 6);
        // Amnesia-restart via a flat index lands in the right group.
        assert_eq!(shards.rejoins(), 0);
        shards.amnesia_restart(4); // group 1, replica 1
        assert_eq!(shards.group(1).rejoins(), 1);
        assert_eq!(shards.group(0).rejoins(), 0);
        assert_eq!(shards.rejoins(), 1);
    }

    /// Satellite property test: growing the map under replica groups
    /// never renumbers a flat server index, and every unmoved block's
    /// home group keeps the exact same three `group * replicas + r`
    /// servers across the epoch bump. Swept over many derived seeds and
    /// several `(active, total, replicas)` shapes — the flat indexing
    /// is what the reply tags encode, so a single violation would
    /// misroute stragglers after a grow.
    #[test]
    fn grow_keeps_flat_indices_stable_for_unmoved_groups() {
        let base = seed();
        for round in 0..16u64 {
            let seed = mix64(base ^ round);
            for (active, total, replicas) in [(2usize, 4usize, 3usize), (3, 6, 3), (2, 5, 2)] {
                let old = ShardMap::new(active, seed);
                let new = old.grow(total);
                assert_eq!(new.epoch(), old.epoch() + 1);
                for b in 0..2_000u64 {
                    let (from, to) = (old.shard_of_id(b), new.shard_of_id(b));
                    if from == to {
                        // Unmoved block: identical flat replica indices
                        // before and after the bump.
                        let flat: Vec<usize> = (0..replicas).map(|r| from * replicas + r).collect();
                        let flat_after: Vec<usize> =
                            (0..replicas).map(|r| to * replicas + r).collect();
                        assert_eq!(flat, flat_after);
                    } else {
                        assert!(
                            to >= active,
                            "seed {seed}: block {b} moved between surviving groups \
                             {from}->{to}: rendezvous minimal-remap violated"
                        );
                    }
                    assert!(to < total, "home beyond provisioned groups");
                }
            }
        }
    }

    #[test]
    fn kv_migrate_grow_moves_keys_and_fences_old_homes() {
        let seed = seed();
        let n_keys = 128u64;
        let config = PrismKvConfig::paper(n_keys, 64);
        let cluster = KvCluster::with_active(4, 2, &config, seed);
        cluster.preload(n_keys, 64);

        let old = cluster.map();
        assert_eq!(old.shards(), 2);
        let keys: Vec<[u8; 8]> = (0..n_keys).map(key_bytes).collect();
        let (new, moved) = cluster.migrate_grow(4, keys.iter().map(|k| k.as_slice()));
        assert_eq!(new.shards(), 4);
        assert_eq!(new.epoch(), old.epoch() + 1);
        assert!(moved > 0, "a 2->4 grow must move some keys");
        assert_eq!(cluster.map(), new, "handle publishes the grown map");
        for s in 0..4 {
            assert_eq!(cluster.shard(s).server().current_epoch(), new.epoch());
        }

        // Every key reads back its value at its *new* home; moved keys
        // are fenced (absent) at their old home.
        let clients = cluster.open_clients();
        for k in 0..n_keys {
            let key = key_bytes(k);
            let home = new.shard_of(&key);
            let (op, req) = clients[home].get(&key);
            let out = drive_kv(cluster.shard(home).server(), &clients[home], op, req);
            assert_eq!(
                out,
                KvOutcome::Value(Some(value_bytes(k, 0, 64))),
                "key {k} must survive the migration at its new home"
            );
            let old_home = old.shard_of(&key);
            if old_home != home {
                let (op, req) = clients[old_home].get(&key);
                let out = drive_kv(
                    cluster.shard(old_home).server(),
                    &clients[old_home],
                    op,
                    req,
                );
                assert_eq!(
                    out,
                    KvOutcome::Value(None),
                    "moved key {k} must be fenced (absent) at its old home"
                );
            }
        }
    }

    #[test]
    fn rs_migrate_grow_moves_blocks_and_fences_old_groups() {
        let seed = seed();
        let n_blocks = 32u64;
        let config = RsConfig::paper(n_blocks, 64);
        let shards = RsShards::with_active(4, 2, 3, &config, seed);
        assert_eq!(
            shards.servers().len(),
            12,
            "all groups provisioned up front"
        );

        // Write a distinct value into every block at its initial home.
        let clients = shards.open_clients();
        let old = shards.map();
        for b in 0..n_blocks {
            let home = old.shard_of_id(b);
            let (op, step) = clients[home].put(b, vec![b as u8 + 1; 64]);
            assert_eq!(
                rs_drive(shards.group(home), &clients[home], op, step, &[false; 3]),
                RsOutcome::Written
            );
        }

        let (new, moved) = shards.migrate_grow(4);
        assert!(moved > 0, "a 2->4 grow must move some blocks");
        assert_eq!(shards.map(), new);
        for g in 0..4 {
            for r in 0..3 {
                assert_eq!(
                    shards.group(g).replica(r).server().current_epoch(),
                    new.epoch()
                );
            }
        }

        for b in 0..n_blocks {
            let home = new.shard_of_id(b);
            let (op, step) = clients[home].get(b);
            assert_eq!(
                rs_drive(shards.group(home), &clients[home], op, step, &[false; 3]),
                RsOutcome::Value(vec![b as u8 + 1; 64]),
                "block {b} must survive the migration at its new home"
            );
            let old_home = old.shard_of_id(b);
            if old_home != home {
                // The old owners are fenced: a quorum read through the
                // nulled metadata cannot return the stale value.
                let (op, step) = clients[old_home].get(b);
                let out = rs_drive(
                    shards.group(old_home),
                    &clients[old_home],
                    op,
                    step,
                    &[false; 3],
                );
                assert_ne!(
                    out,
                    RsOutcome::Value(vec![b as u8 + 1; 64]),
                    "moved block {b} must not be readable at its old group"
                );
            }
        }
    }
}
