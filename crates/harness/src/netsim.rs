//! Simulation glue: server and client actors over the DES kernel.
//!
//! A request's end-to-end latency decomposes exactly as in the cost
//! model (`prism_simnet::latency`):
//!
//! ```text
//! client overhead + NICs + wire (pre)
//!   → server rx link (queue + serialization)
//!   → processing: PCIe (hardware verbs) or DMA + dispatch core
//!     (software verbs, PRISM chains, RPCs; 16-core FIFO pool)
//!   → server tx link (queue + serialization)
//!   → wire + NICs (post)
//! ```
//!
//! Unloaded, this reproduces the closed-form round trips of
//! [`CostModel`]; under load, queueing at the two link directions and
//! the core pool produces the throughput-latency curves of the paper's
//! figures.

use std::collections::HashMap;
use std::sync::Arc;

use prism_core::integrity::IntegrityStats;
use prism_core::msg::{self, Reply, Request};
use prism_core::op::{DataArg, PrismOp};
use prism_core::PrismServer;
use prism_rdma::RdmaError;
use prism_simnet::engine::{Actor, ActorId, Context, Simulation};
use prism_simnet::estimator::RttEstimator;
use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::resources::{LinkShaper, ServiceCenter};
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_store::DurableStats;

/// One message a protocol adapter wants sent.
#[derive(Debug)]
pub struct Outbound {
    /// Which server (index into the experiment's server list).
    pub server: usize,
    /// Opaque routing tag the adapter uses to match the reply.
    pub tag: u64,
    /// The request.
    pub req: Request,
    /// Fire-and-forget: processed by the server, no reply, not part of
    /// operation latency (reclamation traffic).
    pub background: bool,
    /// The shard-map epoch this request was routed under, carried in
    /// the wire frame ([`prism_core::msg::Request::encode_epoch`]).
    /// Servers fence requests stamped older than their installed epoch
    /// with [`RdmaError::StaleEpoch`]. 0 = unsharded: never fenced.
    pub epoch: u64,
}

impl Outbound {
    /// An unsharded (epoch-0) send — what every pre-cluster adapter
    /// produces.
    pub fn new(server: usize, tag: u64, req: Request, background: bool) -> Self {
        Outbound {
            server,
            tag,
            req,
            background,
            epoch: 0,
        }
    }
}

/// What the adapter wants next after a reply.
#[derive(Debug)]
pub enum AdapterStep {
    /// Waiting for more in-flight replies.
    Wait(Vec<Outbound>),
    /// The current operation finished; `client_compute` models
    /// client-side CPU charged before the next op starts (e.g. Pilaf's
    /// CRC checks, §6.2). `failed` operations are counted separately
    /// and not recorded as latency samples.
    Done {
        /// Trailing sends (reclamation, cleanup).
        sends: Vec<Outbound>,
        /// Client CPU before completion.
        client_compute: SimDuration,
        /// Whether the operation failed/aborted (excluded from latency).
        failed: bool,
    },
    /// Back off (lock or validation contention), flushing `sends`
    /// (reclamation traffic) first, then resume via
    /// [`ProtoAdapter::resume`].
    Backoff {
        /// Fire-and-forget traffic to flush before sleeping.
        sends: Vec<Outbound>,
        /// How long to wait.
        wait: SimDuration,
    },
    /// Retry after a lost round trip (a timed-out request under a
    /// [`FaultPlan`]): like [`AdapterStep::Backoff`] but counted under
    /// the `retries` metric. The op's latency clock keeps running.
    Retry {
        /// Fire-and-forget traffic to flush before sleeping.
        sends: Vec<Outbound>,
        /// How long to wait before [`ProtoAdapter::resume`].
        wait: SimDuration,
    },
    /// The operation exhausted its transport retry budget and is being
    /// abandoned. Like a failed [`AdapterStep::Done`] but counted under
    /// the dedicated `giveups` metric, so budget exhaustion is
    /// distinguishable from protocol-level failure in experiment
    /// output.
    GiveUp {
        /// Trailing sends (reclamation, cleanup).
        sends: Vec<Outbound>,
    },
}

/// A closed-loop protocol client, sans I/O.
pub trait ProtoAdapter {
    /// Begins the next operation, returning its initial sends.
    fn start(&mut self, rng: &mut SimRng) -> Vec<Outbound>;

    /// Resumes after a [`AdapterStep::Backoff`].
    fn resume(&mut self) -> Vec<Outbound>;

    /// Feeds one reply (matched by `tag`).
    fn on_reply(&mut self, tag: u64, reply: Reply) -> AdapterStep;

    /// Observes the virtual clock just before the next `start`/`resume`/
    /// `on_reply` call. Default: ignored. History-recording adapters
    /// (the chaos gate's linearizability drivers) use this to timestamp
    /// operation invocations and completions without widening the other
    /// callbacks.
    fn note_time(&mut self, _now: SimTime) {}

    /// Offers a reply that arrived too late to match an outstanding
    /// attempt — it raced its own timeout, or trails an operation the
    /// adapter already finished. The actor guarantees **exactly-once**
    /// delivery per send attempt: a reply is either fed to
    /// [`ProtoAdapter::on_reply`] or offered here, never both, and
    /// duplicated deliveries of the same attempt are dropped before
    /// this hook.
    ///
    /// The operation's outcome is already settled, so implementations
    /// must not change protocol state; the hook exists to *reclaim*
    /// resources the reply proves exist — e.g. a spare buffer a lost
    /// write reply would otherwise leak (returned sends should be
    /// `background`). `server` is the flat index the reply came from,
    /// so reclamation can be routed back to the allocating shard.
    /// Default: the reply is discarded.
    fn on_stale_reply(&mut self, _tag: u64, _server: usize, _reply: Reply) -> Vec<Outbound> {
        Vec::new()
    }

    /// Whether the outstanding send behind `tag` may be hedged: a
    /// byte-identical copy issued while the first is still in flight,
    /// first reply home wins. Only idempotent reads qualify — a hedged
    /// write or ALLOCATE would execute twice. Default: nothing is
    /// eligible, so arming the hedge policy is a per-adapter opt-in.
    fn hedge_eligible(&self, _tag: u64) -> bool {
        false
    }

    /// Abandons the operation in flight (deadline shed): the client
    /// actor invokes this instead of honoring a [`AdapterStep::Retry`]
    /// once the op has burned its retry deadline. Implementations must
    /// park any still-outstanding sends exactly as a reissue would, so
    /// their stragglers still reach [`ProtoAdapter::on_stale_reply`]
    /// and reclaim what they carry — an unparked abandon would leak the
    /// buffers of in-flight writes. Returns trailing reclamation sends;
    /// the adapter must be ready for `start` afterwards.
    fn abandon(&mut self) -> Vec<Outbound> {
        Vec::new()
    }
}

/// Messages exchanged between actors.
pub enum SimMsg {
    /// A request arriving at a server.
    Req {
        /// Replying destination (client actor).
        from: ActorId,
        /// Adapter routing tag.
        tag: u64,
        /// Send-attempt stamp, echoed back in the reply. Adapters may
        /// reuse tags across operations (and retries reissue them), so
        /// the reply-side dedup must match on the exact attempt, not
        /// just the tag.
        attempt: u64,
        /// The request.
        req: Request,
        /// Whether a reply is expected.
        respond: bool,
        /// The fault fabric flipped a bit of this request's frame in
        /// flight. The flip was applied to the encoded bytes and the
        /// decode verified to fail, so the receiving server NACKs (or
        /// discards fire-and-forget traffic) without executing — a
        /// damaged frame never reaches the execution engine.
        corrupt: bool,
        /// The routing epoch the client stamped into the frame (see
        /// [`Outbound::epoch`]).
        epoch: u64,
    },
    /// A reply arriving at a client.
    Reply {
        /// Adapter routing tag.
        tag: u64,
        /// The request's send-attempt stamp, echoed verbatim.
        attempt: u64,
        /// Index of the replying server in the experiment's server
        /// list, so the client can track incarnations per server.
        server: usize,
        /// The server's incarnation when the reply left. Clients fence
        /// replies stamped older than the newest incarnation they have
        /// seen from that server: after an amnesia restart, pre-crash
        /// stragglers describe memory that no longer exists.
        inc: u64,
        /// The reply.
        reply: Reply,
    },
    /// Client self-message: start the next closed-loop operation or
    /// resume after backoff.
    Kick {
        /// True when resuming from a backoff rather than starting anew.
        resume: bool,
        /// The client's restart epoch when this kick was scheduled. A
        /// kick that outlives a client crash carries the dead epoch and
        /// is discarded — the restarted client must not be double-driven
        /// by its predecessor's timers.
        epoch: u64,
    },
    /// Client self-message armed at send time under a [`FaultPlan`]:
    /// if the tagged request is still outstanding when this fires, the
    /// client synthesizes an error reply in its place.
    Timeout {
        /// The timed-out request's routing tag.
        tag: u64,
        /// Send-attempt stamp; a reissued tag gets a fresh stamp, so a
        /// stale timer for an earlier attempt is ignored.
        attempt: u64,
    },
    /// Client self-message armed at send time when the plan's tail
    /// policy hedges: if the tagged primary attempt is still
    /// outstanding when this fires, the client re-issues a
    /// byte-identical copy under a fresh attempt stamp. First reply
    /// home settles the op; the slower copy becomes a straggler the
    /// harvest hook reclaims.
    Hedge {
        /// The hedged request's routing tag.
        tag: u64,
        /// The *primary* attempt this timer was armed for; a reissued
        /// tag gets a fresh stamp, so a stale hedge timer is ignored.
        attempt: u64,
    },
    /// Self-message scheduled at the closing edge of a crash window.
    /// For a server it models the amnesia reboot (wipe, incarnation
    /// bump, application rejoin via [`RecoveryHooks::on_restart`]); for
    /// a client it models the process coming back empty: all in-flight
    /// operation state is forgotten and a fresh operation starts.
    Restart,
    /// Server self-message re-armed every [`RecoveryHooks::sweep`]
    /// interval: runs the cooperative-termination sweep that reclaims
    /// transaction state left dangling by crashed clients.
    Sweep,
    /// Server self-message carrying an index into the plan's
    /// [`prism_simnet::fault::RotEvent`] list: at-rest bit rot landing
    /// inside one of this server's crash windows (the plan validator
    /// enforces the coverage).
    Rot(usize),
    /// Server self-message carrying an index into the plan's
    /// [`prism_simnet::fault::DiskRotEvent`] list: at-rest bit rot on
    /// this server's durable segment log. Unlike memory rot it needs no
    /// crash window — disks decay while the host is up — and it only
    /// bites when the server later replays the damaged log.
    DiskRot(usize),
    /// One-shot control-plane event ([`RecoveryHooks::control`]),
    /// scheduled on server actor 0 and executed synchronously.
    Control,
    /// Open-loop aggregate self-message: one logical client's intended
    /// arrival instant (see [`crate::openloop`]). The aggregate starts
    /// the operation — or queues its intended time when every slot is
    /// in flight — and schedules the next arrival from its generator.
    Arrival,
    /// Open-loop aggregate self-message driving one multiplexed slot:
    /// resume the slot's adapter after a backoff/retry wait
    /// (`resume == true`), or finish its operation after trailing
    /// client compute and recycle the slot (`resume == false`).
    OlKick {
        /// Which multiplexed logical-client slot.
        slot: u32,
        /// Resume-from-backoff vs finish-and-recycle.
        resume: bool,
    },
}

/// Recovery-protocol hooks a run installs on its servers.
///
/// A recovery callback invoked with the server index.
pub type ServerHook = Arc<dyn Fn(usize) + Send + Sync>;

/// A disk-tear callback invoked with the server index and a dedicated
/// randomness stream (tear-point draws must never touch the request
/// schedule's RNGs).
pub type DiskHook = Arc<dyn Fn(usize, &mut SimRng) + Send + Sync>;

/// A disk-rot callback: server index, the event's seeded stream, and
/// the number of bits to flip.
pub type DiskRotHook = Arc<dyn Fn(usize, &mut SimRng, u32) + Send + Sync>;

/// The default has no hooks and schedules zero extra events, so every
/// existing experiment stays bit-identical to a build without the
/// recovery layer.
#[derive(Clone, Default)]
pub struct RecoveryHooks {
    /// Invoked with the server's index at each amnesia-window close,
    /// *instead of* the bare [`PrismServer::amnesia_restart`]: the
    /// application-level rejoin (wipe, re-register, quorum resync) runs
    /// here, and completes before any post-restart request is served.
    pub on_restart: Option<ServerHook>,
    /// Periodic server-side recovery sweep: `(interval, callback)`.
    /// The callback runs with the server's index every interval of
    /// virtual time, on every server.
    pub sweep: Option<(SimDuration, ServerHook)>,
    /// Value-layer integrity counters shared with the run's protocol
    /// clients (via their `with_integrity` constructors). Reset at the
    /// warmup/measure boundary and folded into the corruption fields of
    /// [`RunResult`] alongside the fabric's frame-level counters.
    pub integrity: Option<Arc<IntegrityStats>>,
    /// One-shot control-plane event: `(instant, callback)`. The
    /// callback runs exactly once at the instant, synchronously inside
    /// the DES (scheduled on server actor 0, drawing no randomness), so
    /// everything it does — e.g. a live [`crate::cluster`] migration:
    /// grow, stream, fence, epoch flip, map publish — is atomic with
    /// respect to every request: traffic sent before the instant
    /// arrives after it stamped with the old epoch and is fenced.
    pub control: Option<(SimTime, Arc<dyn Fn() + Send + Sync>)>,
    /// Tears the server's durable segment log at an amnesia-window
    /// close, when the plan's `disk_torn_prob` fires: invoked with the
    /// server index and the actor's dedicated disk-fault stream,
    /// *before* `on_restart`, so the rejoin replays the damaged log.
    pub disk_tear: Option<DiskHook>,
    /// Applies at-rest rot to the server's segment log for one
    /// [`prism_simnet::fault::DiskRotEvent`]: invoked with the server
    /// index, the event's own seeded stream, and the bit count.
    pub disk_rot: Option<DiskRotHook>,
    /// Durable-recovery counters shared with the run's clusters (via
    /// their `durable_stats` accessors). Reset at the warmup/measure
    /// boundary and folded into the replay/delta-resync fields of
    /// [`RunResult`].
    pub durable: Option<Arc<DurableStats>>,
}

impl std::fmt::Debug for RecoveryHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryHooks")
            .field("on_restart", &self.on_restart.is_some())
            .field("sweep_interval", &self.sweep.as_ref().map(|(i, _)| *i))
            .field("integrity", &self.integrity.is_some())
            .field("control_at", &self.control.as_ref().map(|(t, _)| *t))
            .field("disk_tear", &self.disk_tear.is_some())
            .field("disk_rot", &self.disk_rot.is_some())
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

/// Whether one-sided verbs execute on the NIC or on dispatch cores
/// ("software RDMA" baselines, §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerbPath {
    /// Hardware NIC: one PCIe round trip, no core occupancy.
    Nic,
    /// Software stack: DMA to host plus a dispatch-core execution.
    Cpu,
}

/// A host in the simulation: executes requests against its real
/// [`PrismServer`] and charges simulated time for them.
pub struct ServerActor {
    server: Arc<PrismServer>,
    model: CostModel,
    verb_path: VerbPath,
    rx: LinkShaper,
    tx: LinkShaper,
    cores: ServiceCenter,
    /// This server's index in the experiment's server list (the
    /// identity [`FaultPlan`] crash windows refer to).
    index: usize,
    faults: FaultPlan,
    /// Fault randomness is drawn from a dedicated stream forked off the
    /// plan's seed, never from the kernel RNG, so a no-fault plan
    /// leaves every existing schedule bit-identical.
    fault_rng: SimRng,
    /// Corruption randomness (reply-leg flips, torn-write line counts)
    /// gets its own stream on top: arming the corruption modes must not
    /// perturb where an existing plan's drops and jitter land.
    corrupt_rng: SimRng,
    /// Disk-fault randomness (tear fire/point draws) on its own stream
    /// again: arming the durable-tier faults must not perturb where the
    /// memory-level corruption of an existing plan lands.
    disk_rng: SimRng,
    hooks: RecoveryHooks,
}

impl ServerActor {
    /// Creates a host actor. `index` is the server's position in the
    /// experiment's server list, which is how [`FaultPlan`] crash
    /// windows name it.
    pub fn new(
        server: Arc<PrismServer>,
        model: CostModel,
        verb_path: VerbPath,
        index: usize,
        faults: FaultPlan,
        hooks: RecoveryHooks,
    ) -> Self {
        let gbps = model.link_gbps;
        let cores = ServiceCenter::new(model.server_cores);
        let fault_rng = SimRng::new(faults.seed ^ 0x5E7E_C7ED ^ ((index as u64 + 1) << 24));
        let corrupt_rng = SimRng::new(faults.seed ^ 0xB17F_0B17 ^ ((index as u64 + 1) << 24));
        let disk_rng = SimRng::new(faults.seed ^ 0xD15C_7EA2 ^ ((index as u64 + 1) << 24));
        ServerActor {
            server,
            model,
            verb_path,
            rx: LinkShaper::new_gbps(gbps),
            tx: LinkShaper::new_gbps(gbps),
            cores,
            index,
            faults,
            fault_rng,
            corrupt_rng,
            disk_rng,
            hooks,
        }
    }

    /// Decomposes `req`'s processing into `(dma, occupancy, post)`:
    /// `dma` precedes core admission, `occupancy` holds a dispatch core
    /// (None = hardware NIC path), and `post` is latency beyond the
    /// occupied interval (polling/dispatch slack). Unloaded end-to-end
    /// latency is `dma + occupancy + post`, matching the closed forms of
    /// [`CostModel`].
    fn processing(&self, req: &Request) -> (SimDuration, Option<SimDuration>, SimDuration) {
        let m = &self.model;
        match req {
            Request::Verb(v) => match self.verb_path {
                // Hardware atomics serialize a read-modify-write on the
                // NIC and measure slightly slower than READs (Kalia et
                // al.'s design guidelines; visible in Figure 1's CAS bar).
                VerbPath::Nic => {
                    let extra = if matches!(v, msg::Verb::Cas64 { .. }) {
                        SimDuration::from_nanos(300)
                    } else {
                        SimDuration::ZERO
                    };
                    (m.pcie_rt + extra, None, SimDuration::ZERO)
                }
                VerbPath::Cpu => {
                    // Executed like a 1-op chain on a dispatch core.
                    let occ = m.prism_chain_occupancy(1);
                    (m.host_dma, Some(occ), sw_latency(m, 1) - occ)
                }
            },
            Request::Chain(c) => {
                let n = c.len().max(1) as u64;
                let occ = m.prism_chain_occupancy(n);
                (m.host_dma, Some(occ), sw_latency(m, n) - occ)
            }
            Request::Rpc(_) => (m.host_dma, Some(m.rpc_core_occupancy), m.rpc_dispatch),
            Request::Batch(reqs) => {
                // One doorbell: the submission DMAs once (the slowest
                // member's pre-admission cost), then members execute
                // back-to-back, so core occupancy accumulates while the
                // post-occupancy slack is paid once — this is where
                // batching beats N separate submissions.
                let mut dma = SimDuration::ZERO;
                let mut occ = SimDuration::ZERO;
                let mut post = SimDuration::ZERO;
                let mut occupies = false;
                for r in reqs {
                    let (d, o, p) = self.processing(r);
                    dma = dma.max(d);
                    if let Some(o) = o {
                        occ += o;
                        occupies = true;
                    }
                    post = post.max(p);
                }
                (dma, if occupies { Some(occ) } else { None }, post)
            }
        }
    }
}

/// Total software execution latency of an `n`-op chain: the calibrated
/// single-primitive cost (≈2.5 µs, §4.3) plus [`sw_per_op`] for each
/// additional op.
fn sw_latency(m: &CostModel, n: u64) -> SimDuration {
    sw_dispatch(m) + sw_per_op(m) * n
}

/// Dispatch overhead of the software data plane; together with one
/// [`sw_per_op`] this equals the calibrated single-primitive execution
/// cost (≈2.5 µs, §4.3).
fn sw_dispatch(m: &CostModel) -> SimDuration {
    let single = SimDuration::from_nanos(2_500);
    single - sw_per_op(m)
}

/// Marginal cost of each additional chained primitive: small, because a
/// chain shares one dispatch through the software data plane — the bulk
/// of the 2.5 us single-primitive cost (§4.3) is per-request, not
/// per-op.
fn sw_per_op(m: &CostModel) -> SimDuration {
    let _ = m;
    SimDuration::from_nanos(150)
}

impl Actor<SimMsg> for ServerActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SimMsg>) {
        let me = ctx.self_id();
        // Amnesia restarts fire at each window's closing edge. `on_start`
        // events enqueue ahead of all message traffic, so a restart at
        // time T delivers before requests arriving at T: the half-open
        // window guarantees those requests see the new incarnation.
        for at in self.faults.amnesia_restarts(self.index) {
            ctx.send_at(me, at, SimMsg::Restart);
        }
        for (i, ev) in self.faults.rot.iter().enumerate() {
            if ev.server == self.index {
                ctx.send_at(me, ev.at, SimMsg::Rot(i));
            }
        }
        for (i, ev) in self.faults.disk_rot.iter().enumerate() {
            if ev.server == self.index {
                ctx.send_at(me, ev.at, SimMsg::DiskRot(i));
            }
        }
        if let Some((interval, _)) = &self.hooks.sweep {
            ctx.send_in(me, *interval, SimMsg::Sweep);
        }
        // The control event is global, so exactly one actor schedules it.
        if self.index == 0 {
            if let Some((at, _)) = &self.hooks.control {
                ctx.send_at(me, *at, SimMsg::Control);
            }
        }
    }

    fn on_message(&mut self, msg: SimMsg, ctx: &mut Context<'_, SimMsg>) {
        let (from, tag, attempt, req, respond, corrupt, epoch) = match msg {
            SimMsg::Req {
                from,
                tag,
                attempt,
                req,
                respond,
                corrupt,
                epoch,
            } => (from, tag, attempt, req, respond, corrupt, epoch),
            SimMsg::Control => {
                // Control plane, not this host's process: runs even
                // inside a crash window (the driver is external), draws
                // no randomness, and completes atomically before the
                // next data-plane event.
                if let Some((_, f)) = &self.hooks.control {
                    f();
                }
                ctx.metrics().add("control_events", 1);
                return;
            }
            SimMsg::Rot(i) => {
                // At-rest bit rot: seeded positions inside the event's
                // byte range flip while the host is down. The positions
                // come from a per-event stream, so request traffic never
                // perturbs where the rot lands.
                let (addr, len, bits) = {
                    let ev = &self.faults.rot[i];
                    (ev.addr, ev.len, ev.bits)
                };
                let mut rng = SimRng::new(self.faults.seed ^ 0xB17F_707E ^ ((i as u64 + 1) << 8));
                for _ in 0..bits {
                    let off = rng.gen_range(len);
                    let bit = rng.gen_range(8) as u8;
                    let _ = self.server.arena().flip_bit(addr + off, bit);
                }
                ctx.metrics().add("fault_corrupt_injected", 1);
                return;
            }
            SimMsg::DiskRot(i) => {
                // At-rest rot on the durable segment log: bit positions
                // come from a per-event stream, so request traffic never
                // perturbs where the rot lands. The damage is latent —
                // it only bites when a later amnesia replay hits the
                // corrupt frame and the CRC rejects it.
                let bits = self.faults.disk_rot[i].bits;
                let mut rng = SimRng::new(self.faults.seed ^ 0xD15C_0707 ^ ((i as u64 + 1) << 8));
                if let Some(f) = &self.hooks.disk_rot {
                    f(self.index, &mut rng, bits);
                    ctx.metrics().add("fault_disk_rot_events", 1);
                }
                return;
            }
            SimMsg::Restart => {
                // The amnesia window closed: the host reboots empty
                // under a bumped incarnation. The rejoin hook (if any)
                // runs the application-level recovery — wipe,
                // re-register, quorum resync — before any post-restart
                // request is processed. Restarts run even if another
                // crash window still covers this instant: the wipe is
                // what the overlapping window's requests must not see
                // surviving.
                //
                // Disk tears fire first: the crash that took the host
                // down also cut whatever the log was flushing mid-write,
                // and the rejoin below must replay the *damaged* log.
                if self.faults.disk_torn_prob > 0.0
                    && self.disk_rng.gen_bool(self.faults.disk_torn_prob)
                {
                    if let Some(f) = &self.hooks.disk_tear {
                        f(self.index, &mut self.disk_rng);
                        ctx.metrics().add("fault_disk_tears", 1);
                    }
                }
                ctx.metrics().add("fault_restarts", 1);
                match &self.hooks.on_restart {
                    Some(f) => f(self.index),
                    None => {
                        self.server.amnesia_restart();
                    }
                }
                return;
            }
            SimMsg::Sweep => {
                if let Some((interval, f)) = self.hooks.sweep.clone() {
                    f(self.index);
                    let me = ctx.self_id();
                    ctx.send_in(me, interval, SimMsg::Sweep);
                }
                return;
            }
            _ => unreachable!("servers only receive requests"),
        };
        let now = ctx.now();
        // Crash windows gate request execution *before* the
        // linearization point: a crashed server neither executes nor
        // replies (its memory survives the window — fail-recover). The
        // client's timeout turns the silence into an error reply.
        if self.faults.crashed(self.index, now) {
            if self.faults.torn_write_prob > 0.0
                && self.corrupt_rng.gen_bool(self.faults.torn_write_prob)
            {
                if let Some(torn) = tear_request(&req, &mut self.corrupt_rng) {
                    // The host died mid-DMA: a prefix of the payload's
                    // 64-byte line groups landed, the rest of the write
                    // — and every later op of the chain — did not. No
                    // reply; the client's timeout turns the silence
                    // into a retry against different state.
                    ctx.metrics().add("fault_corrupt_injected", 1);
                    ctx.metrics().add("fault_torn_writes", 1);
                    msg::execute_local(&self.server, &torn);
                    return;
                }
            }
            ctx.metrics().add("fault_crash_drops", 1);
            return;
        }
        if corrupt {
            // The frame failed its CRC check at the receiving NIC:
            // NACK (or silently discard fire-and-forget traffic)
            // without executing — damaged requests never reach the
            // execution engine, so they cannot corrupt server state.
            if respond {
                let rx_done = self
                    .rx
                    .transmit(now, req.wire_len() + self.model.header_bytes);
                let inc = self.server.regions().current_incarnation();
                let reply = Reply::Verb(Err(RdmaError::Corrupt));
                let tx_done = self.tx.transmit(
                    rx_done + self.model.host_dma,
                    reply.wire_len() + self.model.header_bytes,
                );
                ctx.send_at(
                    from,
                    tx_done + post_delay(&self.model),
                    SimMsg::Reply {
                        tag,
                        attempt,
                        server: self.index,
                        inc,
                        reply,
                    },
                );
            }
            return;
        }
        // Epoch fencing: a request stamped with an older shard-map
        // epoch was routed by a client that has not yet learned of a
        // reshard, so the key it targets may live elsewhere now. The
        // deterministic NACK (the routing analog of the incarnation
        // fence) is sent *before* execution — a stale-routed write
        // must not land, a stale-routed read must not answer.
        // Epoch 0 marks unsharded traffic and is never fenced.
        let current_epoch = self.server.current_epoch();
        if epoch != 0 && epoch < current_epoch {
            ctx.metrics().add("epoch_fenced", 1);
            if respond {
                let rx_done = self
                    .rx
                    .transmit(now, req.wire_len() + self.model.header_bytes);
                let inc = self.server.regions().current_incarnation();
                let reply = Reply::Verb(Err(RdmaError::StaleEpoch {
                    seen: epoch,
                    current: current_epoch,
                }));
                let tx_done = self.tx.transmit(
                    rx_done + self.model.host_dma,
                    reply.wire_len() + self.model.header_bytes,
                );
                ctx.send_at(
                    from,
                    tx_done + post_delay(&self.model),
                    SimMsg::Reply {
                        tag,
                        attempt,
                        server: self.index,
                        inc,
                        reply,
                    },
                );
            }
            return;
        }
        // Inbound serialization through this host's rx direction
        // (payload plus per-message wire headers).
        let rx_done = self
            .rx
            .transmit(now, req.wire_len() + self.model.header_bytes);
        // Processing: DMA, then (for software paths) a FIFO dispatch-core
        // occupancy, then post-execution slack.
        let (dma, occupancy, post) = self.processing(&req);
        // Gray-failure slowdown: a covering window stretches this host's
        // processing — DMA, core occupancy, dispatch slack — by the
        // window's factor. The host stays alive and correct, it is just
        // slow; the stretched occupancy is also what backs convoys up
        // behind a straggling server. Pure schedule data, no RNG draw,
        // so window-free plans stay bit-identical.
        let slow = self.faults.slowdown_factor(self.index, now);
        let (dma, occupancy, post) = if slow > 1 {
            ctx.metrics().add("fault_slowdown_hits", 1);
            (dma * slow, occupancy.map(|o| o * slow), post * slow)
        } else {
            (dma, occupancy, post)
        };
        // Admission control: when the plan bounds the dispatch queue, a
        // request whose queueing delay would exceed the bound is refused
        // with a typed Busy NACK *before* execution and without
        // consuming a core — a degraded server fails fast instead of
        // building a convoy. Hardware-path verbs never queue on cores
        // and are never refused.
        if self.faults.tail.admission_ns > 0 && respond {
            if let Some(_occ) = occupancy {
                let wait = self.cores.would_wait(rx_done + dma);
                if wait.as_nanos() > self.faults.tail.admission_ns {
                    ctx.metrics().add("busy_nacks", 1);
                    let inc = self.server.regions().current_incarnation();
                    let reply = Reply::Verb(Err(RdmaError::Busy {
                        wait_ns: wait.as_nanos(),
                    }));
                    let tx_done = self.tx.transmit(
                        rx_done + self.model.host_dma,
                        reply.wire_len() + self.model.header_bytes,
                    );
                    ctx.send_at(
                        from,
                        tx_done + post_delay(&self.model),
                        SimMsg::Reply {
                            tag,
                            attempt,
                            server: self.index,
                            inc,
                            reply,
                        },
                    );
                    return;
                }
            }
        }
        let proc_done = match occupancy {
            Some(occ) => self.cores.admit(rx_done + dma, occ) + post,
            None => rx_done + dma + post,
        };
        // The real execution against real memory happens "at" the
        // processing instant; the DES serializes actor callbacks so this
        // is the operation's linearization point.
        let mut reply = msg::execute_local(&self.server, &req);
        if respond {
            // Replies are stamped with the incarnation in force when
            // they leave: a reply executed before an amnesia restart
            // but delivered after carries the old stamp, which is
            // exactly what lets the client fence it.
            let inc = self.server.regions().current_incarnation();
            let tx_done = self
                .tx
                .transmit(proc_done, reply.wire_len() + self.model.header_bytes);
            let mut post = post_delay(&self.model);
            if !self.faults.is_noop() {
                // Reply-leg faults. The request already executed (the
                // linearization point is above), so a dropped reply
                // models the classic "did it happen?" ambiguity.
                // Duplication is injected on this leg only: duplicating
                // the *request* leg would re-execute non-idempotent
                // ALLOCATE chains.
                if self.faults.drop_prob > 0.0 && self.fault_rng.gen_bool(self.faults.drop_prob) {
                    ctx.metrics().add("fault_drops", 1);
                    return;
                }
                if self.faults.jitter_ns > 0 {
                    post +=
                        SimDuration::from_nanos(self.fault_rng.gen_range(self.faults.jitter_ns));
                }
                if self.faults.dup_prob > 0.0 && self.fault_rng.gen_bool(self.faults.dup_prob) {
                    ctx.metrics().add("fault_dups", 1);
                    let extra = SimDuration::from_nanos(
                        self.fault_rng.gen_range(self.faults.jitter_ns.max(1_000)),
                    );
                    ctx.send_at(
                        from,
                        tx_done + post + extra,
                        SimMsg::Reply {
                            tag,
                            attempt,
                            server: self.index,
                            inc,
                            // The duplicate carries the clean copy: the
                            // flip below damages one frame, not the
                            // operation's every delivery.
                            reply: reply.clone(),
                        },
                    );
                }
                if self.faults.flip_reply_prob > 0.0
                    && self.corrupt_rng.gen_bool(self.faults.flip_reply_prob)
                {
                    // In-flight reply corruption, applied to the real
                    // encoded frame: flip one seeded bit and verify the
                    // frame CRCs catch it (they provably do for any
                    // single-bit flip — detection is counted at the
                    // injection site for exactly that reason). What the
                    // client receives is the typed Corrupt NACK its
                    // decode failure would synthesize.
                    ctx.metrics().add("fault_corrupt_injected", 1);
                    ctx.metrics().add("fault_corrupt_detected", 1);
                    if let Ok(mut bytes) = reply.encode() {
                        let pos = self.corrupt_rng.gen_range(bytes.len() as u64 * 8);
                        bytes[(pos / 8) as usize] ^= 1 << (pos % 8);
                        debug_assert!(
                            Reply::decode(&bytes).is_err(),
                            "a single-bit flip must not survive the frame CRCs"
                        );
                    }
                    reply = Reply::Verb(Err(RdmaError::Corrupt));
                }
            }
            ctx.send_at(
                from,
                tx_done + post,
                SimMsg::Reply {
                    tag,
                    attempt,
                    server: self.index,
                    inc,
                    reply,
                },
            );
        }
    }
}

/// Client-side fixed delay before a request reaches the server's rx
/// link: client overhead, two NIC traversals, wire, and half the
/// deployment surcharge.
pub fn pre_delay(m: &CostModel) -> SimDuration {
    m.client_overhead + m.nic_proc * 2 + m.wire_oneway + m.deployment.extra_rtt() / 2
}

/// Server-to-client fixed delay after tx serialization.
pub fn post_delay(m: &CostModel) -> SimDuration {
    m.nic_proc * 2 + m.wire_oneway + m.deployment.extra_rtt() / 2
}

/// Models a host dying mid-DMA: truncates the first multi-line inline
/// WRITE/ALLOCATE payload of `req` to a seeded prefix of its 64-byte
/// line groups (at least one, never all) and drops every later op of
/// the chain. Returns `None` when the request carries no payload a torn
/// write could bite — plain reads, RPCs, single-line writes — which
/// crash-drop whole instead.
fn tear_request(req: &Request, rng: &mut SimRng) -> Option<Request> {
    let Request::Chain(chain) = req else {
        return None;
    };
    for (i, op) in chain.iter().enumerate() {
        let payload_len = match op {
            PrismOp::Write {
                data: DataArg::Inline(d),
                ..
            } => d.len(),
            PrismOp::Allocate { data, .. } => data.len(),
            _ => 0,
        };
        if payload_len <= 64 {
            continue;
        }
        let lines = payload_len.div_ceil(64);
        let keep = 1 + rng.gen_range(lines as u64 - 1) as usize;
        let keep_bytes = (keep * 64).min(payload_len);
        let mut torn = chain[..=i].to_vec();
        match &mut torn[i] {
            PrismOp::Write {
                data: DataArg::Inline(d),
                len,
                ..
            } => {
                d.truncate(keep_bytes);
                *len = keep_bytes as u32;
            }
            PrismOp::Allocate { data, .. } => data.truncate(keep_bytes),
            _ => unreachable!("only payload-bearing ops are torn"),
        }
        return Some(Request::Chain(torn));
    }
    None
}

/// A closed-loop client actor: runs one operation at a time through its
/// adapter, recording per-op latency and op counts.
pub struct ClientActor {
    adapter: Box<dyn ProtoAdapter>,
    servers: Vec<ActorId>,
    model: CostModel,
    rng: SimRng,
    op_start: SimTime,
    /// This client's index (the identity [`FaultPlan`] partitions refer
    /// to).
    index: usize,
    faults: FaultPlan,
    /// Dedicated fault stream (see [`ServerActor::new`]).
    fault_rng: SimRng,
    /// Dedicated corruption stream (request-leg flips), so arming the
    /// corruption modes never moves an existing plan's drops or jitter.
    corrupt_rng: SimRng,
    /// The operation in flight observed a corrupt frame (a Corrupt NACK
    /// reached the adapter). Cleared at op boundaries; how the op ends
    /// decides whether the incident counts as repaired (the retry
    /// succeeded) or aborted (the op failed or gave up cleanly).
    corrupt_op: bool,
    /// Tags awaiting a reply, stamped with their send attempt. Under a
    /// fault plan every reply must pass through this map: a tag absent
    /// from it (duplicate delivery, or a reply racing its own timeout)
    /// is dropped before it reaches the adapter.
    outstanding: HashMap<u64, u64>,
    /// The last attempt per tag whose reply was consumed — fed to the
    /// adapter, or offered to [`ProtoAdapter::on_stale_reply`]. The
    /// attempt counter is monotonic, so `(tag, attempt)` names one send
    /// exactly: a reply matching this map is a duplicate delivery and
    /// is dropped; a mismatched reply absent from it is a straggler the
    /// harvest hook sees exactly once. Never cleared (client restarts
    /// included): a pre-restart attempt harvested twice could double-
    /// free the buffer its reply carries.
    last_done: HashMap<u64, u64>,
    attempt_ctr: u64,
    /// Bumped at each client restart; kicks scheduled by a dead epoch
    /// are discarded on delivery.
    epoch: u64,
    /// Highest incarnation stamp seen per server; older-stamped replies
    /// are fenced (see [`SimMsg::Reply`]).
    seen_inc: Vec<u64>,
    /// Windowed-quantile RTT tracker feeding the adaptive timeout,
    /// hedge delay, and backoff when the plan's tail policy arms them.
    /// Only live completions feed it — a timed-out attempt contributes
    /// no sample (Karn's rule), so retransmission ambiguity never
    /// poisons the estimate.
    estimator: RttEstimator,
    /// Send instant per `(tag, attempt)`, kept while the tail policy is
    /// active so completions can be turned into RTT samples.
    sent_at: HashMap<(u64, u64), SimTime>,
    /// The hedge copy in flight per tag (its attempt stamp). At most
    /// one hedge per primary: two copies of an idempotent read are a
    /// tail fix, N copies are an outage amplifier.
    hedged: HashMap<u64, u64>,
    /// The request behind each hedge-eligible outstanding tag, so the
    /// hedge timer can re-issue a byte-identical copy.
    hedge_req: HashMap<u64, (usize, Request, u64)>,
    /// Consecutive transport retries of the op in flight (reset at op
    /// start), driving the adaptive backoff schedule.
    op_retries: u32,
}

impl ClientActor {
    /// Creates a client over the given server actors. `index` is the
    /// client's position in the experiment's client list, which is how
    /// [`FaultPlan`] partitions name it.
    pub fn new(
        adapter: Box<dyn ProtoAdapter>,
        servers: Vec<ActorId>,
        model: CostModel,
        rng: SimRng,
        index: usize,
        faults: FaultPlan,
    ) -> Self {
        let fault_rng = SimRng::new(faults.seed ^ 0xC0FF_EE00 ^ ((index as u64 + 1) << 16));
        let corrupt_rng = SimRng::new(faults.seed ^ 0xB17F_C11E ^ ((index as u64 + 1) << 16));
        let seen_inc = vec![0; servers.len()];
        ClientActor {
            adapter,
            servers,
            model,
            rng,
            op_start: SimTime::ZERO,
            index,
            faults,
            fault_rng,
            corrupt_rng,
            corrupt_op: false,
            outstanding: HashMap::new(),
            last_done: HashMap::new(),
            attempt_ctr: 0,
            epoch: 0,
            seen_inc,
            estimator: RttEstimator::p99(),
            sent_at: HashMap::new(),
            hedged: HashMap::new(),
            hedge_req: HashMap::new(),
            op_retries: 0,
        }
    }

    /// Whether the tail policy needs RTT samples.
    fn tail_tracks_rtt(&self) -> bool {
        self.faults.tail.adaptive_timeout || self.faults.tail.hedge
    }

    /// The per-request timeout: the plan's fixed value, or — under the
    /// adaptive policy — four times the tracked p99, clamped between
    /// two unloaded fixed-path round trips and eight fixed timeouts.
    fn effective_timeout(&self) -> SimDuration {
        if !self.faults.tail.adaptive_timeout {
            return self.faults.timeout;
        }
        let rt = pre_delay(&self.model) + post_delay(&self.model);
        self.estimator
            .timeout(4, rt * 2, self.faults.timeout * 8, self.faults.timeout)
    }

    /// How long a hedge-eligible read stays solo before its copy is
    /// issued: the tracked p99 (i.e. once the first copy is
    /// statistically in the tail), floored at one unloaded fixed-path
    /// round trip; half the fixed timeout until the window warms up.
    fn hedge_delay(&self) -> SimDuration {
        let rt = pre_delay(&self.model) + post_delay(&self.model);
        let fallback = SimDuration::from_nanos(self.faults.timeout.as_nanos() / 2);
        self.estimator.hedge_delay(rt, fallback)
    }

    fn dispatch(&mut self, sends: Vec<Outbound>, ctx: &mut Context<'_, SimMsg>) {
        let me = ctx.self_id();
        let armed = !self.faults.is_noop();
        for out in sends {
            let mut attempt = 0;
            if armed && !out.background {
                // Arm the timeout before deciding the request's fate: a
                // dropped or partitioned request must still time out.
                self.attempt_ctr += 1;
                attempt = self.attempt_ctr;
                self.outstanding.insert(out.tag, attempt);
                let pre = pre_delay(&self.model);
                ctx.send_in(
                    me,
                    pre + self.effective_timeout(),
                    SimMsg::Timeout {
                        tag: out.tag,
                        attempt,
                    },
                );
                if self.faults.tail.hedge && self.adapter.hedge_eligible(out.tag) {
                    // Keep a byte-identical copy to re-issue if the
                    // first lands in the tail.
                    self.hedge_req
                        .insert(out.tag, (out.server, out.req.clone(), out.epoch));
                    ctx.send_in(
                        me,
                        pre + self.hedge_delay(),
                        SimMsg::Hedge {
                            tag: out.tag,
                            attempt,
                        },
                    );
                }
            }
            self.transmit(
                out.server,
                out.tag,
                attempt,
                out.req,
                out.epoch,
                !out.background,
                ctx,
            );
        }
    }

    /// Sends one request copy through the (possibly faulty) fabric:
    /// partitions, drops, jitter, and request-leg flips decide its fate
    /// exactly as before; hedge copies take the same gauntlet as
    /// primaries.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        server: usize,
        tag: u64,
        attempt: u64,
        req: Request,
        epoch: u64,
        respond: bool,
        ctx: &mut Context<'_, SimMsg>,
    ) {
        let me = ctx.self_id();
        let dst = self.servers[server];
        let mut pre = pre_delay(&self.model);
        let mut corrupt = false;
        if !self.faults.is_noop() {
            if respond && self.tail_tracks_rtt() {
                self.sent_at.insert((tag, attempt), ctx.now());
            }
            // Partitions (asymmetric ones included, plus flap-window
            // down phases) sever the request leg here: replies already
            // in flight when a partition begins still deliver.
            if self.faults.partitioned(self.index, server, ctx.now()) {
                ctx.metrics().add("fault_drops", 1);
                return;
            }
            if self.faults.drop_prob > 0.0 && self.fault_rng.gen_bool(self.faults.drop_prob) {
                ctx.metrics().add("fault_drops", 1);
                return;
            }
            if self.faults.jitter_ns > 0 {
                pre += SimDuration::from_nanos(self.fault_rng.gen_range(self.faults.jitter_ns));
            }
            if self.faults.flip_req_prob > 0.0
                && self.corrupt_rng.gen_bool(self.faults.flip_req_prob)
            {
                // Request-leg corruption, applied to the real
                // encoded frame — epoch word included (see the
                // reply-leg twin in [`ServerActor`]): flip one
                // seeded bit, verify the frame CRCs catch it, and
                // deliver the request marked corrupt so the server
                // NACKs it unexecuted. A flipped epoch can thus
                // never masquerade as a fresher (or staler) route.
                ctx.metrics().add("fault_corrupt_injected", 1);
                ctx.metrics().add("fault_corrupt_detected", 1);
                if let Ok(mut bytes) = req.encode_epoch(epoch) {
                    let pos = self.corrupt_rng.gen_range(bytes.len() as u64 * 8);
                    bytes[(pos / 8) as usize] ^= 1 << (pos % 8);
                    debug_assert!(
                        Request::decode_epoch(&bytes).is_err(),
                        "a single-bit flip must not survive the frame CRCs"
                    );
                }
                corrupt = true;
            }
        }
        ctx.send_in(
            dst,
            pre,
            SimMsg::Req {
                from: me,
                tag,
                attempt,
                req,
                respond,
                corrupt,
                epoch,
            },
        );
    }

    /// Routes a reply (real or synthesized) through the adapter and
    /// acts on its verdict.
    fn feed_reply(&mut self, tag: u64, reply: Reply, ctx: &mut Context<'_, SimMsg>) {
        if matches!(reply, Reply::Verb(Err(RdmaError::Corrupt))) {
            // A corrupt frame was NACKed somewhere in this op's round
            // trips; remember it so the op's eventual outcome settles
            // the incident as repaired or aborted.
            self.corrupt_op = true;
        }
        self.adapter.note_time(ctx.now());
        let epoch = self.epoch;
        match self.adapter.on_reply(tag, reply) {
            AdapterStep::Wait(sends) => self.dispatch(sends, ctx),
            AdapterStep::Done {
                sends,
                client_compute,
                failed,
            } => {
                self.dispatch(sends, ctx);
                if self.corrupt_op {
                    self.corrupt_op = false;
                    ctx.metrics().add(
                        if failed {
                            "fault_corrupt_aborted"
                        } else {
                            "fault_corrupt_repaired"
                        },
                        1,
                    );
                }
                let end = ctx.now() + client_compute;
                if failed {
                    ctx.metrics().add("failed", 1);
                } else {
                    let latency = end.since(self.op_start);
                    ctx.metrics().record("lat", latency);
                    ctx.metrics().add("ops", 1);
                }
                let me = ctx.self_id();
                ctx.send_at(
                    me,
                    end,
                    SimMsg::Kick {
                        resume: false,
                        epoch,
                    },
                );
            }
            AdapterStep::Backoff { sends, wait } => {
                self.dispatch(sends, ctx);
                ctx.metrics().add("backoffs", 1);
                let me = ctx.self_id();
                ctx.send_in(
                    me,
                    wait,
                    SimMsg::Kick {
                        resume: true,
                        epoch,
                    },
                );
            }
            AdapterStep::Retry { sends, mut wait } => {
                self.dispatch(sends, ctx);
                let deadline = self.faults.tail.retry_deadline;
                if deadline > SimDuration::ZERO && ctx.now().since(self.op_start) >= deadline {
                    // Deadline-aware retry budget: the op has already
                    // burned its deadline on lost round trips, so shed
                    // it instead of joining the retry storm. The
                    // adapter parks its outstanding stragglers (so
                    // their replies still reclaim resources) and the
                    // client moves on to fresh work.
                    let sends = self.adapter.abandon();
                    self.dispatch(sends, ctx);
                    if self.corrupt_op {
                        self.corrupt_op = false;
                        ctx.metrics().add("fault_corrupt_aborted", 1);
                    }
                    ctx.metrics().add("shed", 1);
                    ctx.metrics().add("failed", 1);
                    let me = ctx.self_id();
                    let now = ctx.now();
                    ctx.send_at(
                        me,
                        now,
                        SimMsg::Kick {
                            resume: false,
                            epoch,
                        },
                    );
                    return;
                }
                ctx.metrics().add("retries", 1);
                self.op_retries += 1;
                if self.faults.tail.adaptive_timeout {
                    // The adaptive schedule replaces the adapter's fixed
                    // backoff once the RTT window is warm: the wait
                    // scales with what the fabric actually measures.
                    wait = self.estimator.backoff(self.op_retries, wait);
                }
                if !self.faults.is_noop() {
                    // Seeded jitter from the dedicated fault stream
                    // desynchronizes the retry storm that forms when a
                    // crash window times out a whole client cohort at
                    // once. Same seed, same jitter: replay stays
                    // bit-exact.
                    let span = wait.as_nanos().max(2) / 2;
                    wait += SimDuration::from_nanos(self.fault_rng.gen_range(span));
                }
                let me = ctx.self_id();
                ctx.send_in(
                    me,
                    wait,
                    SimMsg::Kick {
                        resume: true,
                        epoch,
                    },
                );
            }
            AdapterStep::GiveUp { sends } => {
                self.dispatch(sends, ctx);
                if self.corrupt_op {
                    self.corrupt_op = false;
                    ctx.metrics().add("fault_corrupt_aborted", 1);
                }
                ctx.metrics().add("giveups", 1);
                ctx.metrics().add("failed", 1);
                let me = ctx.self_id();
                let now = ctx.now();
                ctx.send_at(
                    me,
                    now,
                    SimMsg::Kick {
                        resume: false,
                        epoch,
                    },
                );
            }
        }
    }
}

impl Actor<SimMsg> for ClientActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SimMsg>) {
        let me = ctx.self_id();
        // Client crash windows end in a restart, exactly like server
        // amnesia windows.
        for at in self.faults.client_restarts(self.index) {
            ctx.send_at(me, at, SimMsg::Restart);
        }
        // Stagger client start times slightly to avoid lockstep.
        let jitter = SimDuration::from_nanos(ctx.rng().gen_range(1_000));
        ctx.send_in(
            me,
            jitter,
            SimMsg::Kick {
                resume: false,
                epoch: 0,
            },
        );
    }

    fn on_message(&mut self, msg: SimMsg, ctx: &mut Context<'_, SimMsg>) {
        if !self.faults.is_noop() && self.faults.client_crashed(self.index, ctx.now()) {
            // The client process is down: every delivery — replies,
            // timers, kicks, even a restart scheduled at the close of an
            // earlier overlapping window — is lost. The restart at the
            // final covering window's closing edge revives it.
            ctx.metrics().add("fault_client_drops", 1);
            return;
        }
        match msg {
            SimMsg::Kick { resume, epoch } => {
                if epoch != self.epoch {
                    // Scheduled before a crash the client has since
                    // restarted through; the op it would drive no longer
                    // exists.
                    return;
                }
                if !resume {
                    // Backoff waits stay inside the op's latency.
                    self.op_start = ctx.now();
                    self.corrupt_op = false;
                    self.op_retries = 0;
                }
                self.adapter.note_time(ctx.now());
                let sends = if resume {
                    self.adapter.resume()
                } else {
                    self.adapter.start(&mut self.rng)
                };
                self.dispatch(sends, ctx);
            }
            SimMsg::Reply {
                tag,
                attempt,
                server,
                inc,
                reply,
            } => {
                if !self.faults.is_noop() {
                    // Asymmetric partitions and flap-window down phases
                    // sever the server→client leg at delivery time: the
                    // request executed (the linearization point is
                    // server-side), but this client never hears the
                    // answer — the one-way-link version of the "did it
                    // happen?" ambiguity. Checked before fencing and
                    // dedup: a reply that never arrives touches no
                    // client state.
                    if self.faults.injects_gray()
                        && self.faults.reply_partitioned(self.index, server, ctx.now())
                    {
                        ctx.metrics().add("fault_drops", 1);
                        return;
                    }
                    // Incarnation fencing: once this client has seen a
                    // reply from incarnation k of a server, any reply
                    // stamped older is a pre-crash straggler describing
                    // memory that no longer exists, and is rejected
                    // before the dedup map ever sees it (Storm's stale-
                    // completion rule).
                    if inc < self.seen_inc[server] {
                        ctx.metrics().add("fault_fenced", 1);
                        return;
                    }
                    self.seen_inc[server] = inc;
                    // Under a fault plan every reply must match the
                    // exact outstanding attempt — the primary's or, for
                    // a hedged tag, the copy's. A mismatch is a
                    // duplicate delivery, a reply that lost the race
                    // against its own timeout, or a stale pre-timeout
                    // reply for a tag the adapter has since reissued.
                    let primary = self.outstanding.get(&tag).copied();
                    let hedge = self.hedged.get(&tag).copied();
                    if primary != Some(attempt) && hedge != Some(attempt) {
                        if self.last_done.get(&tag) == Some(&attempt) {
                            // True duplicate of a consumed attempt.
                            return;
                        }
                        // First delivery of a straggler: the op it
                        // belongs to is settled, but the reply may
                        // prove a server-side allocation exists — offer
                        // it to the adapter's reclamation hook, exactly
                        // once. Hedge losers land here too: whichever
                        // copy arrives second is harvested, never fed.
                        self.last_done.insert(tag, attempt);
                        ctx.metrics().add("stale_harvested", 1);
                        let sends = self.adapter.on_stale_reply(tag, server, reply);
                        self.dispatch(sends, ctx);
                        return;
                    }
                    // First copy home settles the op. The slower copy
                    // (if one is in flight) is deliberately *not*
                    // recorded as done: its arrival must take the
                    // straggler path above so reclamation still lands.
                    if hedge == Some(attempt) {
                        ctx.metrics().add("hedge_wins", 1);
                    }
                    self.outstanding.remove(&tag);
                    self.hedged.remove(&tag);
                    self.hedge_req.remove(&tag);
                    self.last_done.insert(tag, attempt);
                    if self.tail_tracks_rtt() {
                        if let Some(sent) = self.sent_at.remove(&(tag, attempt)) {
                            self.estimator.observe(ctx.now().since(sent));
                        }
                        // The loser never becomes a sample (Karn's
                        // rule); drop its entry to keep the map bounded.
                        for a in [primary, hedge].into_iter().flatten() {
                            self.sent_at.remove(&(tag, a));
                        }
                    }
                }
                self.feed_reply(tag, reply, ctx);
            }
            SimMsg::Timeout { tag, attempt } => {
                if self.outstanding.get(&tag) == Some(&attempt) {
                    self.sent_at.remove(&(tag, attempt));
                    // Primary copy timed out. With a hedge copy still
                    // in flight the op is not dead: promote the copy to
                    // primary — its own timer, armed at hedge send,
                    // decides its fate — and stay silent toward the
                    // adapter.
                    if let Some(h) = self.hedged.remove(&tag) {
                        self.outstanding.insert(tag, h);
                        return;
                    }
                    self.outstanding.remove(&tag);
                    self.hedge_req.remove(&tag);
                    ctx.metrics().add("timeouts", 1);
                    // Synthesize the transport-level failure the protocol
                    // machines already understand: the same stand-in their
                    // sequential drivers use for a crashed replica.
                    self.feed_reply(tag, Reply::Verb(Err(RdmaError::ReceiverNotReady)), ctx);
                    return;
                }
                if self.hedged.get(&tag) == Some(&attempt) {
                    // The hedge copy timed out while the primary is
                    // still outstanding (and still has a live timer):
                    // forget the copy, keep waiting on the primary.
                    self.hedged.remove(&tag);
                    self.sent_at.remove(&(tag, attempt));
                }
                // Otherwise the reply arrived first (or the tag was
                // reissued); this timer is stale.
            }
            SimMsg::Hedge { tag, attempt } => {
                // Fire only while the exact primary attempt this timer
                // was armed for is still outstanding, and at most once
                // per primary.
                if self.outstanding.get(&tag) != Some(&attempt) || self.hedged.contains_key(&tag) {
                    return;
                }
                let Some((server, req, epoch)) = self
                    .hedge_req
                    .get(&tag)
                    .map(|(s, r, e)| (*s, r.clone(), *e))
                else {
                    return;
                };
                ctx.metrics().add("hedges", 1);
                self.attempt_ctr += 1;
                let copy = self.attempt_ctr;
                self.hedged.insert(tag, copy);
                // The copy gets its own timeout and takes the same
                // faulty fabric as any primary send.
                let me = ctx.self_id();
                ctx.send_in(
                    me,
                    pre_delay(&self.model) + self.effective_timeout(),
                    SimMsg::Timeout { tag, attempt: copy },
                );
                self.transmit(server, tag, copy, req, epoch, true, ctx);
            }
            SimMsg::Restart => {
                // Rebooted with amnesia: every in-flight operation is
                // forgotten mid-flight. Its server-side effects —
                // prepared transaction records, held lock words — dangle
                // by design; the recovery sweeps must reclaim them. The
                // epoch bump fences the dead client's surviving timers.
                self.epoch += 1;
                self.outstanding.clear();
                self.corrupt_op = false;
                // Hedge copies and send-time samples die with the
                // process; their stragglers take the harvest path.
                // `last_done` survives (see its invariant).
                self.hedged.clear();
                self.hedge_req.clear();
                self.sent_at.clear();
                self.op_retries = 0;
                ctx.metrics().add("fault_client_restarts", 1);
                self.op_start = ctx.now();
                self.adapter.note_time(ctx.now());
                let sends = self.adapter.start(&mut self.rng);
                self.dispatch(sends, ctx);
            }
            SimMsg::Req { .. }
            | SimMsg::Sweep
            | SimMsg::Rot(_)
            | SimMsg::DiskRot(_)
            | SimMsg::Control
            | SimMsg::Arrival
            | SimMsg::OlKick { .. } => {
                unreachable!(
                    "clients receive neither requests, server self-messages, nor open-loop timers"
                )
            }
        }
    }
}

/// One point of a throughput-latency curve.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Closed-loop clients.
    pub clients: usize,
    /// Completed operations per second during the measurement window.
    pub tput_ops: f64,
    /// Mean operation latency in microseconds.
    pub mean_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Failed/aborted operation count (retries are internal to ops).
    pub failed: u64,
    /// Backoff events (lock conflicts, transaction aborts).
    pub backoffs: u64,
    /// Messages the fault plan dropped (both legs, incl. partitions).
    pub drops: u64,
    /// Replies the fault plan duplicated.
    pub dups: u64,
    /// Request timeouts that synthesized an error reply.
    pub timeouts: u64,
    /// Adapter-level retries after lost round trips.
    pub retries: u64,
    /// Requests silently dropped inside a server crash window.
    pub crash_drops: u64,
    /// Operations abandoned after exhausting the transport retry
    /// budget (also counted in `failed`).
    pub giveups: u64,
    /// Pre-crash replies rejected by incarnation fencing.
    pub fenced: u64,
    /// Requests NACKed by shard-map epoch fencing (stale-routed after
    /// a live reshard).
    pub epoch_fenced: u64,
    /// Straggler replies offered to [`ProtoAdapter::on_stale_reply`]
    /// for resource reclamation (each exactly once).
    pub stale_harvested: u64,
    /// Server amnesia restarts executed.
    pub restarts: u64,
    /// Client crash-window restarts executed.
    pub client_restarts: u64,
    /// Corruptions the fault fabric injected: in-flight bit flips
    /// (either leg), torn multi-line writes, and at-rest rot events.
    pub corruptions_injected: u64,
    /// Corruptions detected: frame-level CRC failures (every injected
    /// flip, by construction) plus value-layer checksum mismatches
    /// observed by the protocol clients' [`IntegrityStats`].
    pub corruptions_detected: u64,
    /// Corruption incidents that ended in a clean recovery: the op
    /// retried past the damage, a quorum masked it, or an overwrite
    /// healed it.
    pub corruptions_repaired: u64,
    /// Corruption incidents that ended in a clean typed failure — an
    /// abort, never a silently wrong answer.
    pub aborted_corrupt: u64,
    /// Records recovered from local segment logs by amnesia replays
    /// (via [`RecoveryHooks::durable`]).
    pub replayed: u64,
    /// Blocks fetched from peers during delta resync — only those newer
    /// than the replayed high-water mark. With intact logs this is a
    /// small fraction of what a full resync would have moved.
    pub delta_resynced: u64,
    /// Segment tails truncated at a torn or rotted frame during replay.
    pub segments_truncated: u64,
    /// Amnesia-window closes at which the fault fabric tore the
    /// server's unsynced log tail.
    pub disk_tears: u64,
    /// Hedge copies issued for tail-eligible reads under the plan's
    /// tail policy.
    pub hedges: u64,
    /// Operations settled by the hedge copy arriving first (the
    /// primary became a harvested straggler).
    pub hedge_wins: u64,
    /// Operations shed by the deadline-aware retry budget instead of
    /// retried (also counted in `failed`).
    pub shed: u64,
    /// Requests refused by server-side admission control with a typed
    /// `Busy` NACK (overload protection).
    pub busy_nacks: u64,
    /// Requests whose server-side processing was stretched by an
    /// active gray-failure slowdown window.
    pub slowdown_windows: u64,
}

/// Runs a closed-loop experiment: `n_clients` clients over the given
/// servers, `warmup` then `measure` of virtual time, under `faults`
/// (pass [`FaultPlan::default`] for a pristine fabric — the schedule is
/// then bit-identical to a build without the fault layer).
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop(
    servers: &[Arc<PrismServer>],
    model: &CostModel,
    verb_path: VerbPath,
    n_clients: usize,
    mk_adapter: &mut dyn FnMut(usize) -> Box<dyn ProtoAdapter>,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
    faults: &FaultPlan,
) -> RunResult {
    run_closed_loop_with(
        servers,
        model,
        verb_path,
        n_clients,
        mk_adapter,
        warmup,
        measure,
        seed,
        faults,
        &RecoveryHooks::default(),
    )
}

/// [`run_closed_loop`] with recovery hooks: amnesia-rejoin and periodic
/// sweep callbacks installed on every server actor.
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop_with(
    servers: &[Arc<PrismServer>],
    model: &CostModel,
    verb_path: VerbPath,
    n_clients: usize,
    mk_adapter: &mut dyn FnMut(usize) -> Box<dyn ProtoAdapter>,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
    faults: &FaultPlan,
    hooks: &RecoveryHooks,
) -> RunResult {
    // Reject plans naming hosts outside the run's topology before any
    // virtual time elapses.
    faults.validate(servers.len(), n_clients);
    let mut sim: Simulation<SimMsg> = Simulation::new(seed);
    let server_ids: Vec<ActorId> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            sim.add_actor(Box::new(ServerActor::new(
                Arc::clone(s),
                model.clone(),
                verb_path,
                i,
                faults.clone(),
                hooks.clone(),
            )))
        })
        .collect();
    for i in 0..n_clients {
        let adapter = mk_adapter(i);
        let rng = SimRng::new(seed ^ ((i as u64 + 1) << 20));
        sim.add_actor(Box::new(ClientActor::new(
            adapter,
            server_ids.clone(),
            model.clone(),
            rng,
            i,
            faults.clone(),
        )));
    }
    sim.run_for(warmup);
    sim.metrics_mut().reset();
    if let Some(integrity) = &hooks.integrity {
        // Value-layer counters cover the same window as the metrics.
        integrity.reset();
    }
    if let Some(durable) = &hooks.durable {
        durable.reset();
    }
    sim.run_for(measure);
    let metrics = sim.metrics();
    let (val_detected, val_repaired, val_aborted) = hooks
        .integrity
        .as_ref()
        .map(|s| (s.detected(), s.repaired(), s.aborted()))
        .unwrap_or((0, 0, 0));
    let (replayed, delta_resynced, segments_truncated) = hooks
        .durable
        .as_ref()
        .map(|d| (d.replayed(), d.delta_resynced(), d.segments_truncated()))
        .unwrap_or((0, 0, 0));
    let ops = metrics.counter("ops");
    let (mean, p99) = metrics
        .histogram("lat")
        .map(|h| (h.mean_micros(), h.quantile_micros(0.99)))
        .unwrap_or((0.0, 0.0));
    RunResult {
        clients: n_clients,
        tput_ops: ops as f64 / measure.as_micros_f64() * 1e6,
        mean_us: mean,
        p99_us: p99,
        failed: metrics.counter("failed"),
        backoffs: metrics.counter("backoffs"),
        drops: metrics.counter("fault_drops"),
        dups: metrics.counter("fault_dups"),
        timeouts: metrics.counter("timeouts"),
        retries: metrics.counter("retries"),
        crash_drops: metrics.counter("fault_crash_drops"),
        giveups: metrics.counter("giveups"),
        fenced: metrics.counter("fault_fenced"),
        epoch_fenced: metrics.counter("epoch_fenced"),
        stale_harvested: metrics.counter("stale_harvested"),
        restarts: metrics.counter("fault_restarts"),
        client_restarts: metrics.counter("fault_client_restarts"),
        corruptions_injected: metrics.counter("fault_corrupt_injected"),
        corruptions_detected: metrics.counter("fault_corrupt_detected") + val_detected,
        corruptions_repaired: metrics.counter("fault_corrupt_repaired") + val_repaired,
        aborted_corrupt: metrics.counter("fault_corrupt_aborted") + val_aborted,
        replayed,
        delta_resynced,
        segments_truncated,
        disk_tears: metrics.counter("fault_disk_tears"),
        hedges: metrics.counter("hedges"),
        hedge_wins: metrics.counter("hedge_wins"),
        shed: metrics.counter("shed"),
        busy_nacks: metrics.counter("busy_nacks"),
        slowdown_windows: metrics.counter("fault_slowdown_hits"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::builder::ops;
    use prism_rdma::region::AccessFlags;

    /// An adapter issuing one plain READ per op.
    struct ReadAdapter {
        addr: u64,
        rkey: u32,
        chain: bool,
    }

    impl ProtoAdapter for ReadAdapter {
        fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
            let req = if self.chain {
                Request::Chain(vec![ops::read(self.addr, 512, self.rkey)])
            } else {
                Request::Verb(prism_core::msg::Verb::Read {
                    addr: self.addr,
                    len: 512,
                    rkey: self.rkey,
                })
            };
            vec![Outbound {
                server: 0,
                tag: 0,
                req,
                background: false,
                epoch: 0,
            }]
        }

        fn resume(&mut self) -> Vec<Outbound> {
            unreachable!()
        }

        fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
            match reply {
                Reply::Verb(Ok(d)) => assert_eq!(d.len(), 512),
                Reply::Chain(r) => assert_eq!(r[0].data.len(), 512),
                other => panic!("unexpected {other:?}"),
            }
            AdapterStep::Done {
                sends: Vec::new(),
                client_compute: SimDuration::ZERO,
                failed: false,
            }
        }
    }

    fn test_server() -> (Arc<PrismServer>, u64, u32) {
        let s = Arc::new(PrismServer::new(1 << 20));
        let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
        (s, addr, rkey.0)
    }

    #[test]
    fn unloaded_verb_latency_matches_closed_form() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let r = run_closed_loop(
            &[s],
            &model,
            VerbPath::Nic,
            1,
            &mut |_| {
                Box::new(ReadAdapter {
                    addr,
                    rkey,
                    chain: false,
                })
            },
            SimDuration::millis(1),
            SimDuration::millis(5),
            1,
            &FaultPlan::default(),
        );
        let expected = model.rdma_onesided_rtt(512).as_micros_f64();
        // The DES adds request-side serialization the closed form omits;
        // allow a small tolerance.
        assert!(
            (r.mean_us - expected).abs() < 0.15,
            "DES {} vs closed form {}",
            r.mean_us,
            expected
        );
    }

    #[test]
    fn unloaded_chain_latency_matches_prism_sw() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let r = run_closed_loop(
            &[s],
            &model,
            VerbPath::Nic,
            1,
            &mut |_| {
                Box::new(ReadAdapter {
                    addr,
                    rkey,
                    chain: true,
                })
            },
            SimDuration::millis(1),
            SimDuration::millis(5),
            1,
            &FaultPlan::default(),
        );
        let expected = model
            .primitive_latency(
                prism_simnet::latency::Platform::PrismSw,
                prism_simnet::latency::Primitive::Read,
            )
            .as_micros_f64();
        assert!(
            (r.mean_us - expected).abs() < 0.3,
            "DES {} vs closed form {}",
            r.mean_us,
            expected
        );
    }

    #[test]
    fn throughput_saturates_with_clients() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let mut last = 0.0;
        let mut results = Vec::new();
        for &n in &[1usize, 8, 64] {
            let r = run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                n,
                &mut |_| {
                    Box::new(ReadAdapter {
                        addr,
                        rkey,
                        chain: false,
                    })
                },
                SimDuration::millis(1),
                SimDuration::millis(5),
                7,
                &FaultPlan::default(),
            );
            results.push(r);
            assert!(r.tput_ops > last, "throughput should rise with clients");
            last = r.tput_ops;
        }
        // Latency grows once the link saturates.
        assert!(results[2].mean_us > results[0].mean_us);
        // 512-byte reads over a 40 Gb/s link: ceiling ≈ 8-9 Mops.
        assert!(
            results[2].tput_ops < 10_000_000.0,
            "tput {} exceeds link ceiling",
            results[2].tput_ops
        );
    }

    /// Retries a failed round trip twice, then gives up — exercising
    /// the Retry (with seeded jitter) and GiveUp paths.
    struct FaultyRead {
        addr: u64,
        rkey: u32,
        attempts: u32,
    }
    impl FaultyRead {
        fn read(&self) -> Vec<Outbound> {
            vec![Outbound {
                server: 0,
                tag: 0,
                req: Request::Verb(prism_core::msg::Verb::Read {
                    addr: self.addr,
                    len: 512,
                    rkey: self.rkey,
                }),
                background: false,
                epoch: 0,
            }]
        }
    }
    impl ProtoAdapter for FaultyRead {
        fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
            self.attempts = 0;
            self.read()
        }
        fn resume(&mut self) -> Vec<Outbound> {
            self.read()
        }
        fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
            if matches!(reply, Reply::Verb(Ok(_))) {
                return AdapterStep::Done {
                    sends: Vec::new(),
                    client_compute: SimDuration::ZERO,
                    failed: false,
                };
            }
            self.attempts += 1;
            if self.attempts <= 2 {
                AdapterStep::Retry {
                    sends: Vec::new(),
                    wait: SimDuration::micros(20),
                }
            } else {
                AdapterStep::GiveUp { sends: Vec::new() }
            }
        }
    }

    fn faulty_read(addr: u64, rkey: u32) -> Box<dyn ProtoAdapter> {
        Box::new(FaultyRead {
            addr,
            rkey,
            attempts: 0,
        })
    }

    #[test]
    fn fault_plan_injects_and_is_deterministic() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let faults = FaultPlan::seeded(11)
            .with_loss(0.05, 0.02)
            .with_jitter(2_000)
            .with_timeout(SimDuration::micros(50))
            .with_crash(
                0,
                SimTime::from_nanos(2_000_000),
                SimTime::from_nanos(2_500_000),
            );
        let run = || {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                4,
                &mut |_| faulty_read(addr, rkey),
                SimDuration::millis(1),
                SimDuration::millis(5),
                3,
                &faults,
            )
        };
        let a = run();
        let b = run();
        assert!(a.tput_ops > 0.0, "ops must complete under faults");
        assert!(a.drops > 0, "losses must be injected");
        assert!(a.dups > 0, "duplicates must be injected");
        assert!(a.timeouts > 0, "lost round trips must time out");
        assert!(a.retries > 0, "timed-out requests must be retried");
        assert!(a.giveups > 0, "exhausted budgets must surface as giveups");
        assert!(a.failed >= a.giveups, "every giveup is also a failure");
        assert!(a.crash_drops > 0, "the crash window must swallow requests");
        // Same seed, same plan: bit-identical metrics — including the
        // jittered retry schedule, whose randomness comes only from the
        // dedicated per-client fault streams.
        assert_eq!(a.tput_ops, b.tput_ops);
        assert_eq!(a.mean_us, b.mean_us);
        assert_eq!(a.p99_us, b.p99_us);
        assert_eq!(
            (
                a.failed,
                a.drops,
                a.dups,
                a.timeouts,
                a.retries,
                a.crash_drops,
                a.giveups
            ),
            (
                b.failed,
                b.drops,
                b.dups,
                b.timeouts,
                b.retries,
                b.crash_drops,
                b.giveups
            )
        );
    }

    #[test]
    fn amnesia_restart_bumps_incarnation_and_fences() {
        // Hook-less amnesia: the server wipes and re-registers under a
        // bumped incarnation; clients that keep using their pre-crash
        // rkey get StaleIncarnation NACKs (surfacing as failed ops), not
        // stale data.
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let faults = FaultPlan::seeded(5)
            .with_timeout(SimDuration::micros(50))
            .with_amnesia_crash(
                0,
                SimTime::from_nanos(2_000_000),
                SimTime::from_nanos(2_200_000),
            );
        let r = run_closed_loop(
            std::slice::from_ref(&s),
            &model,
            VerbPath::Nic,
            2,
            &mut |_| faulty_read(addr, rkey),
            SimDuration::millis(1),
            SimDuration::millis(4),
            9,
            &faults,
        );
        assert_eq!(r.restarts, 1, "one amnesia window, one restart");
        assert_eq!(s.regions().current_incarnation(), 1);
        assert!(r.tput_ops > 0.0, "pre-crash ops complete");
        assert!(
            r.failed > 0,
            "post-restart reads with the stale rkey must fail, not serve wiped memory"
        );
    }

    #[test]
    fn client_crash_window_restarts_the_client() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let faults = FaultPlan::seeded(6)
            .with_timeout(SimDuration::micros(50))
            .with_client_crash(
                1,
                SimTime::from_nanos(2_000_000),
                SimTime::from_nanos(2_300_000),
            );
        let run = || {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                2,
                &mut |_| faulty_read(addr, rkey),
                SimDuration::millis(1),
                SimDuration::millis(4),
                4,
                &faults,
            )
        };
        let a = run();
        assert_eq!(a.client_restarts, 1, "one crash window, one restart");
        assert!(
            a.tput_ops > 0.0,
            "the surviving client keeps completing ops"
        );
        let b = run();
        assert_eq!(a.tput_ops, b.tput_ops);
        assert_eq!(a.client_restarts, b.client_restarts);
    }

    #[test]
    #[should_panic(expected = "names server 7")]
    fn run_rejects_plans_naming_absent_servers() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let faults = FaultPlan::seeded(1).with_crash(7, SimTime::ZERO, SimTime::from_nanos(1_000));
        run_closed_loop(
            &[s],
            &model,
            VerbPath::Nic,
            1,
            &mut |_| faulty_read(addr, rkey),
            SimDuration::millis(1),
            SimDuration::millis(1),
            1,
            &faults,
        );
    }

    #[test]
    fn software_verbs_cost_more_and_occupy_cores() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let hw = run_closed_loop(
            std::slice::from_ref(&s),
            &model,
            VerbPath::Nic,
            1,
            &mut |_| {
                Box::new(ReadAdapter {
                    addr,
                    rkey,
                    chain: false,
                })
            },
            SimDuration::millis(1),
            SimDuration::millis(4),
            1,
            &FaultPlan::default(),
        );
        let sw = run_closed_loop(
            &[s],
            &model,
            VerbPath::Cpu,
            1,
            &mut |_| {
                Box::new(ReadAdapter {
                    addr,
                    rkey,
                    chain: false,
                })
            },
            SimDuration::millis(1),
            SimDuration::millis(4),
            1,
            &FaultPlan::default(),
        );
        let delta = sw.mean_us - hw.mean_us;
        assert!(
            (2.0..3.5).contains(&delta),
            "software RDMA adds ~2.5us (got {delta})"
        );
    }

    #[test]
    fn bit_flips_are_detected_conserved_and_deterministic() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let faults = FaultPlan::seeded(21)
            .with_timeout(SimDuration::micros(50))
            .with_flips(0.05, 0.05);
        let run = || {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                4,
                &mut |_| faulty_read(addr, rkey),
                SimDuration::millis(1),
                SimDuration::millis(5),
                3,
                &faults,
            )
        };
        let a = run();
        assert!(a.corruptions_injected > 0, "flips must be injected");
        assert_eq!(
            a.corruptions_detected, a.corruptions_injected,
            "every single-bit flip must be caught by the frame CRCs"
        );
        assert!(
            a.corruptions_repaired + a.aborted_corrupt > 0,
            "corrupt ops must settle as repaired or cleanly aborted"
        );
        assert!(a.tput_ops > 0.0, "ops still complete under corruption");
        let b = run();
        assert_eq!(a.tput_ops, b.tput_ops);
        assert_eq!(
            (
                a.corruptions_injected,
                a.corruptions_repaired,
                a.aborted_corrupt
            ),
            (
                b.corruptions_injected,
                b.corruptions_repaired,
                b.aborted_corrupt
            )
        );
    }

    #[test]
    fn zeroed_corruption_knobs_leave_a_fault_run_bit_identical() {
        // The corruption streams are separate from the fault streams and
        // every draw is gated on its knob, so arming the machinery with
        // zero probabilities must not move a single event.
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let base = FaultPlan::seeded(11)
            .with_loss(0.05, 0.02)
            .with_jitter(2_000)
            .with_timeout(SimDuration::micros(50));
        let armed = base.clone().with_flips(0.0, 0.0).with_torn_writes(0.0);
        let run = |faults: &FaultPlan| {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                4,
                &mut |_| faulty_read(addr, rkey),
                SimDuration::millis(1),
                SimDuration::millis(5),
                3,
                faults,
            )
        };
        let a = run(&base);
        let b = run(&armed);
        assert_eq!(a.tput_ops, b.tput_ops);
        assert_eq!(a.mean_us, b.mean_us);
        assert_eq!(a.p99_us, b.p99_us);
        assert_eq!(
            (a.failed, a.drops, a.dups, a.timeouts, a.retries),
            (b.failed, b.drops, b.dups, b.timeouts, b.retries)
        );
        assert_eq!(b.corruptions_injected, 0);
        assert_eq!(b.corruptions_detected, 0);
    }

    #[test]
    fn zeroed_gray_knobs_leave_a_fault_run_bit_identical() {
        // Gray faults are pure schedule data (no delivery-time RNG) and
        // the tail policy draws nothing, so arming the machinery with
        // windows that never cover the run — and a default-off policy —
        // must not move a single event of an existing fault run.
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let base = FaultPlan::seeded(11)
            .with_loss(0.05, 0.02)
            .with_jitter(2_000)
            .with_timeout(SimDuration::micros(50));
        let far = SimTime::from_nanos(50_000_000); // past the 6 ms horizon
        let far_end = SimTime::from_nanos(51_000_000);
        let armed = base
            .clone()
            .with_tail_policy(prism_simnet::fault::TailPolicy::default())
            .with_slowdown(0, far, far_end, 8)
            .with_reply_partition(0, 0, far, far_end)
            .with_flap(
                0,
                0,
                far,
                far_end,
                SimDuration::micros(40),
                SimDuration::micros(10),
            );
        assert!(armed.injects_gray());
        let run = |faults: &FaultPlan| {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                4,
                &mut |_| faulty_read(addr, rkey),
                SimDuration::millis(1),
                SimDuration::millis(5),
                3,
                faults,
            )
        };
        let a = run(&base);
        let b = run(&armed);
        assert_eq!(a.tput_ops, b.tput_ops);
        assert_eq!(a.mean_us, b.mean_us);
        assert_eq!(a.p99_us, b.p99_us);
        assert_eq!(
            (a.failed, a.drops, a.dups, a.timeouts, a.retries, a.giveups),
            (b.failed, b.drops, b.dups, b.timeouts, b.retries, b.giveups)
        );
        assert_eq!(
            (
                b.hedges,
                b.hedge_wins,
                b.shed,
                b.busy_nacks,
                b.slowdown_windows
            ),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn slowdown_window_stretches_latency_and_counts() {
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let run = |faults: &FaultPlan| {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                1,
                &mut |_| {
                    Box::new(ReadAdapter {
                        addr,
                        rkey,
                        chain: false,
                    }) as Box<dyn ProtoAdapter>
                },
                SimDuration::millis(1),
                SimDuration::millis(5),
                5,
                faults,
            )
        };
        let healthy = run(&FaultPlan::seeded(5).with_timeout(SimDuration::micros(300)));
        let gray = FaultPlan::seeded(5)
            .with_timeout(SimDuration::micros(300))
            .with_slowdown(
                0,
                SimTime::from_nanos(1_000_000),
                SimTime::from_nanos(6_000_000),
                8,
            );
        let a = run(&gray);
        assert!(
            a.slowdown_windows > 0,
            "requests inside the window must be counted"
        );
        assert!(
            a.mean_us > healthy.mean_us * 2.0,
            "an 8x slowdown must visibly stretch latency ({} vs {})",
            a.mean_us,
            healthy.mean_us
        );
        assert_eq!(a.timeouts, 0, "the 300 µs timeout out-waits the slowdown");
        let b = run(&gray);
        assert_eq!(a.tput_ops, b.tput_ops);
        assert_eq!(a.slowdown_windows, b.slowdown_windows);
    }

    #[test]
    fn admission_bound_busy_nacks_a_convoy_behind_a_straggler() {
        // A 32x straggler on the software path backs a convoy up behind
        // its dispatch cores; the admission bound refuses the overflow
        // with typed Busy NACKs instead of letting the queue build.
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let tail = prism_simnet::fault::TailPolicy {
            admission_ns: 5_000,
            ..Default::default()
        };
        let faults = FaultPlan::seeded(7)
            .with_timeout(SimDuration::micros(400))
            .with_slowdown(
                0,
                SimTime::from_nanos(1_000_000),
                SimTime::from_nanos(5_000_000),
                32,
            )
            .with_tail_policy(tail);
        let run = || {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Cpu,
                24,
                &mut |_| faulty_read(addr, rkey),
                SimDuration::millis(1),
                SimDuration::millis(5),
                9,
                &faults,
            )
        };
        let a = run();
        assert!(a.busy_nacks > 0, "the convoy must be refused admission");
        assert!(a.tput_ops > 0.0, "ops still complete around the NACKs");
        let b = run();
        assert_eq!(a.tput_ops, b.tput_ops);
        assert_eq!(a.busy_nacks, b.busy_nacks);
    }

    /// Retries lost round trips forever — the shape that needs a
    /// deadline budget to stop.
    struct RetryForever {
        addr: u64,
        rkey: u32,
    }
    impl ProtoAdapter for RetryForever {
        fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
            vec![Outbound::new(
                0,
                0,
                Request::Verb(prism_core::msg::Verb::Read {
                    addr: self.addr,
                    len: 512,
                    rkey: self.rkey,
                }),
                false,
            )]
        }
        fn resume(&mut self) -> Vec<Outbound> {
            self.start(&mut SimRng::new(0))
        }
        fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
            if matches!(reply, Reply::Verb(Ok(_))) {
                AdapterStep::Done {
                    sends: Vec::new(),
                    client_compute: SimDuration::ZERO,
                    failed: false,
                }
            } else {
                AdapterStep::Retry {
                    sends: Vec::new(),
                    wait: SimDuration::micros(20),
                }
            }
        }
    }

    #[test]
    fn retry_deadline_sheds_partitioned_ops() {
        // Client 0 is partitioned for the whole run and its adapter
        // would retry forever; the deadline budget sheds each op after
        // 150 µs instead. The unpartitioned client keeps completing.
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let tail = prism_simnet::fault::TailPolicy {
            retry_deadline: SimDuration::micros(150),
            ..Default::default()
        };
        let faults = FaultPlan::seeded(8)
            .with_timeout(SimDuration::micros(50))
            .with_partition(0, 0, SimTime::ZERO, SimTime::from_nanos(6_000_000))
            .with_tail_policy(tail);
        let run = || {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                2,
                &mut |_| Box::new(RetryForever { addr, rkey }) as Box<dyn ProtoAdapter>,
                SimDuration::millis(1),
                SimDuration::millis(5),
                6,
                &faults,
            )
        };
        let a = run();
        assert!(
            a.shed > 0,
            "deadlined ops must be shed, not retried forever"
        );
        assert!(a.failed >= a.shed, "every shed op is also a failure");
        assert!(a.tput_ops > 0.0, "the healthy client keeps completing");
        let b = run();
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.tput_ops, b.tput_ops);
    }

    /// A read client that opts its tag into hedging.
    struct HedgedRead {
        inner: FaultyRead,
    }
    impl ProtoAdapter for HedgedRead {
        fn start(&mut self, rng: &mut SimRng) -> Vec<Outbound> {
            self.inner.start(rng)
        }
        fn resume(&mut self) -> Vec<Outbound> {
            self.inner.resume()
        }
        fn on_reply(&mut self, tag: u64, reply: Reply) -> AdapterStep {
            self.inner.on_reply(tag, reply)
        }
        fn hedge_eligible(&self, _tag: u64) -> bool {
            true
        }
    }

    #[test]
    fn hedged_reads_win_races_and_cut_timeouts() {
        // 30% request-leg loss: unhedged, every lost request burns a
        // full timeout. Hedged, the copy usually survives and answers
        // while the primary's timer is still pending — timeouts drop by
        // an order of magnitude and `hedge_wins` records the races.
        let (s, addr, rkey) = test_server();
        let model = CostModel::testbed();
        let base = FaultPlan::seeded(5)
            .with_loss(0.3, 0.0)
            .with_timeout(SimDuration::micros(60));
        let hedged_plan = base
            .clone()
            .with_tail_policy(prism_simnet::fault::TailPolicy {
                hedge: true,
                adaptive_timeout: true,
                ..Default::default()
            });
        let run = |faults: &FaultPlan| {
            run_closed_loop(
                std::slice::from_ref(&s),
                &model,
                VerbPath::Nic,
                4,
                &mut |_| {
                    Box::new(HedgedRead {
                        inner: FaultyRead {
                            addr,
                            rkey,
                            attempts: 0,
                        },
                    }) as Box<dyn ProtoAdapter>
                },
                SimDuration::millis(1),
                SimDuration::millis(5),
                3,
                faults,
            )
        };
        let unhedged = run(&base);
        let hedged = run(&hedged_plan);
        assert!(hedged.hedges > 0, "hedge copies must be issued");
        assert!(hedged.hedge_wins > 0, "some copies must win the race");
        // The adaptive timeout also shortens the recovery path, so the
        // hedged run completes far more ops in the same window; compare
        // the per-op timeout *rate*, not raw counts. A timeout now needs
        // BOTH copies lost (9% vs 30%), so the achievable cut is bounded
        // at 3.3×; demand at least 2×.
        let rate = |r: &RunResult| r.timeouts as f64 / r.tput_ops.max(1.0);
        assert!(
            rate(&hedged) * 2.0 < rate(&unhedged),
            "hedging must cut the per-op timeout rate sharply ({:.2e} vs {:.2e})",
            rate(&hedged),
            rate(&unhedged)
        );
        assert!(
            hedged.tput_ops > unhedged.tput_ops,
            "fewer burned timeouts means more completed ops"
        );
        let again = run(&hedged_plan);
        assert_eq!(hedged.tput_ops, again.tput_ops);
        assert_eq!(
            (hedged.hedges, hedged.hedge_wins, hedged.stale_harvested),
            (again.hedges, again.hedge_wins, again.stale_harvested)
        );
    }

    #[test]
    fn rot_events_flip_bits_inside_crash_windows() {
        let (s, addr, rkey) = test_server();
        s.arena().write(addr, &[0u8; 64]).unwrap();
        let model = CostModel::testbed();
        let faults = FaultPlan::seeded(13)
            .with_timeout(SimDuration::micros(50))
            .with_crash(
                0,
                SimTime::from_nanos(2_000_000),
                SimTime::from_nanos(2_400_000),
            )
            .with_rot(0, SimTime::from_nanos(2_100_000), addr, 64, 3);
        let r = run_closed_loop(
            std::slice::from_ref(&s),
            &model,
            VerbPath::Nic,
            2,
            &mut |_| faulty_read(addr, rkey),
            SimDuration::millis(1),
            SimDuration::millis(4),
            5,
            &faults,
        );
        assert_eq!(r.corruptions_injected, 1, "one rot event, one corruption");
        let after = s.arena().read(addr, 64).unwrap();
        assert_ne!(after, vec![0u8; 64], "the rot must land in server memory");
    }

    #[test]
    fn tear_request_truncates_multi_line_payloads_only() {
        let mut rng = SimRng::new(17);
        // No payload to tear: verbs, RPCs, single-line writes.
        assert!(tear_request(&Request::Rpc(vec![1, 2, 3]), &mut rng).is_none());
        assert!(
            tear_request(&Request::Chain(vec![ops::read(0x1_0000, 512, 1)]), &mut rng).is_none()
        );
        assert!(tear_request(
            &Request::Chain(vec![ops::write(0x1_0000, vec![7u8; 64], 1)]),
            &mut rng
        )
        .is_none());
        // A 256-byte write tears to a 64-byte-aligned strict prefix, and
        // the trailing op of the chain is dropped.
        for _ in 0..32 {
            let chain = Request::Chain(vec![
                ops::read(0x1_0000, 8, 1),
                ops::write(0x1_0000, vec![7u8; 256], 1),
                ops::read(0x1_0000, 8, 1),
            ]);
            let torn = tear_request(&chain, &mut rng).expect("multi-line write tears");
            let Request::Chain(ops2) = torn else {
                panic!("torn request stays a chain")
            };
            assert_eq!(ops2.len(), 2, "ops after the torn write are dropped");
            let PrismOp::Write {
                data: DataArg::Inline(d),
                len,
                ..
            } = &ops2[1]
            else {
                panic!("second op stays a write")
            };
            assert_eq!(d.len() as u32, *len);
            assert!(d.len() % 64 == 0 && !d.is_empty() && d.len() < 256);
        }
    }
}
