//! Env-tunable scale for the smoke-test configurations.
//!
//! The `quick()` experiment configs measure for a few simulated
//! milliseconds each, which keeps the whole `figures_smoke` suite well
//! under a minute of wall clock. `PRISM_SMOKE_MEASURE_US` overrides the
//! measurement window (in simulated microseconds) for all of them at
//! once: turn it down for a fast sanity pass, up to tighten the
//! headline-inequality checks toward the paper-scale runs.
//!
//! ```text
//! PRISM_SMOKE_MEASURE_US=500 cargo test -p prism-harness --test figures_smoke
//! ```

use prism_simnet::time::SimDuration;

/// Environment variable overriding every quick config's measurement
/// window, in simulated microseconds.
pub const MEASURE_ENV: &str = "PRISM_SMOKE_MEASURE_US";

/// The measurement window for a quick config: `default_micros` unless
/// [`MEASURE_ENV`] is set to a parseable value.
pub fn measure_window(default_micros: u64) -> SimDuration {
    measure_window_from(std::env::var(MEASURE_ENV).ok().as_deref(), default_micros)
}

/// Testable core of [`measure_window`]: the override is clamped to at
/// least 100 us so a typo can never produce an empty measurement.
pub fn measure_window_from(var: Option<&str>, default_micros: u64) -> SimDuration {
    let micros = var
        .and_then(|s| s.trim().parse::<u64>().ok())
        .map(|us| us.max(100))
        .unwrap_or(default_micros);
    SimDuration::micros(micros)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_when_unset_or_garbage() {
        assert_eq!(measure_window_from(None, 4_000), SimDuration::micros(4_000));
        assert_eq!(
            measure_window_from(Some("not a number"), 4_000),
            SimDuration::micros(4_000)
        );
    }

    #[test]
    fn override_parses_and_clamps() {
        assert_eq!(
            measure_window_from(Some("750"), 4_000),
            SimDuration::micros(750)
        );
        assert_eq!(
            measure_window_from(Some("3"), 4_000),
            SimDuration::micros(100),
            "sub-100us overrides clamp up"
        );
    }
}
