//! Figures 9 and 10: PRISM-TX vs FaRM.
//!
//! YCSB-T short read-modify-write transactions over 512-byte objects
//! (§8.3); a single shard, like the paper's testbed, but running the
//! full distributed commit protocol. Figure 9 sweeps clients under
//! uniform access; Figure 10 sweeps the Zipf coefficient and reports
//! peak committed-transaction throughput.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::SimDuration;
use prism_tx::farm::{FarmCluster, FarmConfig};
use prism_tx::prism_tx::{TxCluster, TxConfig};
use prism_workload::{KeyDist, TxnGen};

use crate::adapters::{FarmAdapter, PrismTxAdapter};
use crate::netsim::{run_closed_loop, ProtoAdapter, VerbPath};
use crate::openloop::{sweep_rates, AdapterFactory, OpenLoopKnobs, OpenLoopResult};
use crate::table::{f2, mops, Table};

/// Experiment parameters (§8.3 at reduced key count).
#[derive(Debug, Clone)]
pub struct TxExpConfig {
    /// Keys (the paper uses 8 M 512-byte objects).
    pub n_keys: u64,
    /// Value size.
    pub value_len: u64,
    /// Distinct keys per transaction. YCSB-T wraps single YCSB
    /// operations in transactions, so the paper's "short read-modify-
    /// write transactions" touch one key; multi-key transactions are
    /// fully supported and exercised by the integration tests.
    pub keys_per_txn: usize,
    /// Shards (1 in the paper's testbed).
    pub n_shards: usize,
    /// Client counts for Figure 9.
    pub clients: Vec<usize>,
    /// Zipf coefficients for Figure 10.
    pub zipf: Vec<f64>,
    /// Clients used for the Figure 10 peak-throughput runs.
    pub zipf_clients: usize,
    /// Warm-up per point.
    pub warmup: SimDuration,
    /// Measurement per point.
    pub measure: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// Fault plan applied to every sweep point (default: none).
    pub faults: FaultPlan,
}

impl TxExpConfig {
    /// Full-scale run.
    pub fn paper() -> Self {
        TxExpConfig {
            n_keys: 262_144,
            value_len: 512,
            keys_per_txn: 1,
            n_shards: 1,
            clients: vec![1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256],
            zipf: vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 1.2, 1.4, 1.6],
            zipf_clients: 128,
            warmup: SimDuration::millis(2),
            measure: SimDuration::millis(20),
            seed: 44,
            faults: FaultPlan::default(),
        }
    }

    /// Reduced run for smoke tests. Key count stays high enough that
    /// the uniform workload is genuinely low-contention (the paper uses
    /// 8 M keys; with too few keys, concurrent prepares collide and the
    /// figure's "low contention" premise no longer holds).
    pub fn quick() -> Self {
        TxExpConfig {
            n_keys: 32_768,
            value_len: 512,
            keys_per_txn: 1,
            n_shards: 1,
            clients: vec![1, 16, 64],
            zipf: vec![0.0, 0.99],
            zipf_clients: 32,
            warmup: SimDuration::micros(500),
            measure: crate::smoke::measure_window(4_000),
            seed: 44,
            faults: FaultPlan::default(),
        }
    }

    fn keys_per_shard(&self) -> u64 {
        self.n_keys / self.n_shards as u64
    }
}

struct Systems {
    prism: TxCluster,
    farm: FarmCluster,
}

fn build(cfg: &TxExpConfig) -> Systems {
    // Spares must cover client-side free batching.
    let max_clients = cfg
        .clients
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(cfg.zipf_clients) as u64;
    let mut tx_config = TxConfig::paper(cfg.keys_per_shard(), cfg.value_len);
    tx_config.spare_buffers += 32 * (max_clients + 16);
    Systems {
        prism: TxCluster::new(cfg.n_shards, &tx_config),
        farm: FarmCluster::new(
            cfg.n_shards,
            &FarmConfig {
                keys_per_shard: cfg.keys_per_shard(),
                value_len: cfg.value_len,
            },
        ),
    }
}

fn prism_servers(s: &Systems, n: usize) -> Vec<Arc<prism_core::PrismServer>> {
    (0..n)
        .map(|i| Arc::clone(s.prism.shard(i).server()))
        .collect()
}

fn farm_servers(s: &Systems, n: usize) -> Vec<Arc<prism_core::PrismServer>> {
    (0..n)
        .map(|i| Arc::clone(s.farm.shard(i).server()))
        .collect()
}

fn txn_gen(cfg: &TxExpConfig, zipf: f64, seed: u64) -> TxnGen {
    let dist = KeyDist::zipf(cfg.n_keys, zipf);
    TxnGen::new(
        dist,
        cfg.keys_per_txn,
        cfg.value_len as usize,
        SimRng::new(seed),
    )
}

/// Figure 9: throughput-latency sweep, uniform access.
pub fn figure9(cfg: &TxExpConfig) -> (Table, [f64; 3]) {
    let model = CostModel::testbed();
    let mut t = Table::new(
        &format!(
            "Figure 9: PRISM-TX vs FaRM, YCSB-T uniform ({} keys x {} B, {} keys/txn)",
            cfg.n_keys, cfg.value_len, cfg.keys_per_txn
        ),
        &["system", "clients", "tput_Mtxn", "mean_us", "p99_us"],
    );
    let sys = build(cfg);
    let mut peaks = [0.0f64; 3];
    for &n in &cfg.clients {
        let r = run_closed_loop(
            &prism_servers(&sys, cfg.n_shards),
            &model,
            VerbPath::Nic,
            n,
            &mut |i| {
                Box::new(PrismTxAdapter::new(
                    sys.prism.open_client(),
                    txn_gen(cfg, 0.0, cfg.seed ^ ((i as u64 + 1) * 31)),
                ))
            },
            cfg.warmup,
            cfg.measure,
            cfg.seed ^ n as u64,
            &cfg.faults,
        );
        t.row(&[
            "PRISM-TX".into(),
            n.to_string(),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p99_us),
        ]);
        peaks[0] = peaks[0].max(r.tput_ops);
    }
    for (slot, (label, path)) in [
        ("FaRM", VerbPath::Nic),
        ("FaRM (software RDMA)", VerbPath::Cpu),
    ]
    .into_iter()
    .enumerate()
    {
        for &n in &cfg.clients {
            sys.farm.reset_locks();
            let r = run_closed_loop(
                &farm_servers(&sys, cfg.n_shards),
                &model,
                path,
                n,
                &mut |i| {
                    Box::new(FarmAdapter::new(
                        sys.farm.open_client(),
                        txn_gen(cfg, 0.0, cfg.seed ^ ((i as u64 + 1) * 37)),
                    ))
                },
                cfg.warmup,
                cfg.measure,
                cfg.seed ^ ((n as u64) << 9),
                &cfg.faults,
            );
            t.row(&[
                label.into(),
                n.to_string(),
                mops(r.tput_ops),
                f2(r.mean_us),
                f2(r.p99_us),
            ]);
            peaks[slot + 1] = peaks[slot + 1].max(r.tput_ops);
        }
    }
    (t, peaks)
}

/// Figure 10: peak committed throughput vs Zipf coefficient.
///
/// "Peak" means over client counts, as the paper's methodology implies:
/// under skew the throughput-maximizing offered load shrinks (more
/// clients only add conflict), so each point reports the best of a
/// small client sweep.
pub fn figure10(cfg: &TxExpConfig) -> Table {
    let model = CostModel::testbed();
    let mut t = Table::new(
        &format!(
            "Figure 10: peak throughput vs contention (best of <= {} clients)",
            cfg.zipf_clients
        ),
        &[
            "system",
            "zipf",
            "tput_Mtxn",
            "mean_us",
            "aborts_per_commit",
            "clients_at_peak",
        ],
    );
    let sys = build(cfg);
    let mut sweep: Vec<usize> = Vec::new();
    let mut n = cfg.zipf_clients;
    while n >= 8 {
        sweep.push(n);
        n /= 4;
    }
    for &z in &cfg.zipf {
        let mut best: Option<(f64, f64, f64, usize)> = None;
        for &n in &sweep {
            let r = run_closed_loop(
                &prism_servers(&sys, cfg.n_shards),
                &model,
                VerbPath::Nic,
                n,
                &mut |i| {
                    Box::new(PrismTxAdapter::new(
                        sys.prism.open_client(),
                        txn_gen(cfg, z, cfg.seed ^ ((i as u64 + 1) * 31)),
                    ))
                },
                cfg.warmup,
                cfg.measure,
                cfg.seed ^ (z * 100.0) as u64 ^ ((n as u64) << 16),
                &cfg.faults,
            );
            if best.is_none() || r.tput_ops > best.expect("some").0 {
                let commits = (r.tput_ops * cfg.measure.as_micros_f64() / 1e6).max(1.0);
                best = Some((r.tput_ops, r.mean_us, r.backoffs as f64 / commits, n));
            }
        }
        let (tput, mean, apc, n) = best.expect("sweep nonempty");
        t.row(&[
            "PRISM-TX".into(),
            format!("{z:.2}"),
            mops(tput),
            f2(mean),
            f2(apc),
            n.to_string(),
        ]);
    }
    for &z in &cfg.zipf {
        let mut best: Option<(f64, f64, f64, usize)> = None;
        for &n in &sweep {
            sys.farm.reset_locks();
            let r = run_closed_loop(
                &farm_servers(&sys, cfg.n_shards),
                &model,
                VerbPath::Nic,
                n,
                &mut |i| {
                    Box::new(FarmAdapter::new(
                        sys.farm.open_client(),
                        txn_gen(cfg, z, cfg.seed ^ ((i as u64 + 1) * 37)),
                    ))
                },
                cfg.warmup,
                cfg.measure,
                cfg.seed ^ 0x9000 ^ (z * 100.0) as u64 ^ ((n as u64) << 16),
                &cfg.faults,
            );
            if best.is_none() || r.tput_ops > best.expect("some").0 {
                let commits = (r.tput_ops * cfg.measure.as_micros_f64() / 1e6).max(1.0);
                best = Some((r.tput_ops, r.mean_us, r.backoffs as f64 / commits, n));
            }
        }
        let (tput, mean, apc, n) = best.expect("sweep nonempty");
        t.row(&[
            "FaRM".into(),
            format!("{z:.2}"),
            mops(tput),
            f2(mean),
            f2(apc),
            n.to_string(),
        ]);
    }
    t
}

/// Open-loop latency-under-load sweep for PRISM-TX (uniform YCSB-T
/// transactions): the transactional counterpart of
/// [`crate::kv_exp::open_loop`].
pub fn open_loop(cfg: &TxExpConfig, knobs: &OpenLoopKnobs) -> (Table, Vec<(f64, OpenLoopResult)>) {
    let mut tx_config = TxConfig::paper(cfg.keys_per_shard(), cfg.value_len);
    // Same spare sizing rationale as the KV open-loop sweep: provision
    // for the live slots, not the logical population.
    tx_config.spare_buffers += 32 * (knobs.live_slots() as u64 + 16);
    let n_shards = cfg.n_shards;
    // One sharded cluster for the whole sweep: each point's adapters
    // reopen connections from the recycled slot pool (see
    // `sweep_rates`).
    let cluster = Rc::new(TxCluster::new(n_shards, &tx_config));
    let servers: Vec<Arc<prism_core::PrismServer>> = (0..n_shards)
        .map(|i| Arc::clone(cluster.shard(i).server()))
        .collect();
    let results = sweep_rates(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        knobs,
        cfg.seed,
        &cfg.faults,
        || {
            let cluster = Rc::clone(&cluster);
            let cfg_for_gen = cfg.clone();
            Rc::new(RefCell::new(move |i: usize| {
                Box::new(PrismTxAdapter::new(
                    cluster.open_client(),
                    txn_gen(&cfg_for_gen, 0.0, cfg_for_gen.seed ^ ((i as u64 + 1) * 31)),
                )) as Box<dyn ProtoAdapter>
            })) as AdapterFactory
        },
    );
    let mut t = Table::new(
        &format!(
            "Open-loop PRISM-TX latency under load ({} logical clients on {} aggregates, {} keys/txn)",
            knobs.logical_clients, knobs.actors, cfg.keys_per_txn
        ),
        &[
            "rate_Mtxn",
            "tput_Mtxn",
            "mean_us",
            "p50_us",
            "p99_us",
            "p999_us",
            "backlogged",
        ],
    );
    for (rate, r) in &results {
        t.row(&[
            mops(*rate),
            mops(r.tput_ops),
            f2(r.mean_us),
            f2(r.p50_us),
            f2(r.p99_us),
            f2(r.p999_us),
            r.backlogged.to_string(),
        ]);
    }
    (t, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(t: &Table, system: &str) -> Vec<(f64, f64, f64)> {
        t.to_csv()
            .lines()
            .skip(1)
            .filter_map(|l| {
                let c: Vec<&str> = l.split(',').collect();
                (c[0] == system).then(|| {
                    (
                        c[1].parse().unwrap(),
                        c[2].parse().unwrap(),
                        c[3].parse().unwrap(),
                    )
                })
            })
            .collect()
    }

    #[test]
    fn figure9_shape() {
        let cfg = TxExpConfig::quick();
        let (t, peaks) = figure9(&cfg);
        // Paper: PRISM-TX > FaRM in throughput, lower in latency.
        assert!(
            peaks[0] > peaks[1],
            "PRISM {} vs FaRM {}",
            peaks[0],
            peaks[1]
        );
        assert!(
            peaks[1] > peaks[2],
            "FaRM HW {} vs SW {}",
            peaks[1],
            peaks[2]
        );
        let prism_lat = series(&t, "PRISM-TX")[0].2;
        let farm_lat = series(&t, "FaRM")[0].2;
        assert!(
            prism_lat < farm_lat,
            "PRISM-TX {prism_lat}us vs FaRM {farm_lat}us at 1 client"
        );
    }

    #[test]
    fn figure10_prism_keeps_advantage_under_skew() {
        let cfg = TxExpConfig::quick();
        let t = figure10(&cfg);
        let prism = series(&t, "PRISM-TX");
        let farm = series(&t, "FaRM");
        // Uncontended: strict win (Figure 9's ordering).
        assert!(
            prism[0].1 > farm[0].1,
            "uncontended: PRISM {} vs FaRM {}",
            prism[0].1,
            farm[0].1
        );
        // Under skew both collapse toward the hot key's serialization
        // ceiling; PRISM-TX must stay at least competitive. (At extreme
        // skew our FaRM baseline can edge ahead because its contention
        // waiting polls locked objects through the NIC, while software
        // PRISM validation retries occupy dispatch cores — see
        // EXPERIMENTS.md's Figure 10 discussion.)
        for (p, f) in prism.iter().zip(farm.iter()) {
            assert!(
                p.1 >= 0.75 * f.1,
                "PRISM-TX fell behind FaRM at zipf {} ({} vs {})",
                p.0,
                p.1,
                f.1
            );
        }
    }

    #[test]
    fn open_loop_tx_completes_offered_load() {
        let cfg = TxExpConfig::quick();
        let mut knobs = OpenLoopKnobs::quick();
        // Commit protocols cost several round trips; stay below the
        // single-shard saturation point.
        knobs.rates_per_sec = vec![50_000.0, 200_000.0];
        let (_t, results) = open_loop(&cfg, &knobs);
        for (rate, r) in &results {
            assert!(r.completed > 0, "no commits at {rate} txn/s");
            let ratio = r.tput_ops / rate;
            assert!(
                (0.6..1.4).contains(&ratio),
                "offered {rate} vs committed {} (ratio {ratio})",
                r.tput_ops
            );
        }
    }
}
