//! PRISM-KV (§6 of the PRISM paper) and the Pilaf baseline (§6, [31]).
//!
//! Both stores share the same general design: a hash-table index in
//! registered memory pointing at out-of-line entries. They differ in how
//! operations execute:
//!
//! * **Pilaf** ([`pilaf`]): GETs are two one-sided READs (index entry,
//!   then data) guarded by CRCs against concurrent updates; PUTs are
//!   two-sided RPCs executed by the server CPU.
//! * **PRISM-KV** ([`prism_kv`]): GETs are a single bounded indirect
//!   READ; PUTs are a one-round-trip ALLOCATE → (redirect) → CAS chain
//!   that installs the new buffer out of place. No server CPU on the
//!   data path; only the asynchronous buffer-reclaim notification uses
//!   an RPC.
//!
//! Client protocols are sans-I/O state machines ([`KvStep`]): they emit
//! [`prism_core::msg::Request`]s and consume replies, so the same code
//! runs against a local server (tests, examples) and under the
//! discrete-event simulator (figure regeneration).
//!
//! # Examples
//!
//! ```
//! use prism_core::msg::execute_local;
//! use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
//! use prism_kv::{KvOutcome, KvStep};
//!
//! let server = PrismKvServer::new(&PrismKvConfig::paper(64, 32));
//! let client = server.open_client();
//!
//! // PUT: probe round trip, then the chained install round trip.
//! let (mut op, request) = client.put(&prism_kv::hash::key_bytes(5), &[9u8; 32]);
//! let mut reply = execute_local(server.server(), &request);
//! loop {
//!     match op.on_reply(&client, reply) {
//!         KvStep::Send { request, background } => {
//!             if let Some(b) = background {
//!                 execute_local(server.server(), &b);
//!             }
//!             reply = execute_local(server.server(), &request);
//!         }
//!         KvStep::Done { outcome, .. } => {
//!             assert_eq!(outcome, KvOutcome::Written);
//!             break;
//!         }
//!     }
//! }
//!
//! // GET: a single bounded indirect READ.
//! let (mut op, request) = client.get(&prism_kv::hash::key_bytes(5));
//! let reply = execute_local(server.server(), &request);
//! match op.on_reply(&client, reply) {
//!     KvStep::Done { outcome, .. } => {
//!         assert_eq!(outcome, KvOutcome::Value(Some(vec![9u8; 32])));
//!     }
//!     _ => unreachable!("hit on the first probe"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod crc;
pub mod entry;
pub mod hash;
pub mod pilaf;
pub mod prism_kv;

use prism_core::msg::Request;

/// Outcome of a completed key-value operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOutcome {
    /// GET result: the value, or `None` if absent.
    Value(Option<Vec<u8>>),
    /// PUT or DELETE completed.
    Written,
    /// The operation could not complete (e.g. free list exhausted,
    /// retry budget spent under heavy contention).
    Failed(&'static str),
}

/// One step of a client state machine.
///
/// `background` carries an optional fire-and-forget request (PRISM-KV's
/// asynchronous buffer-free notification, §6.1) that the driver sends
/// without waiting for a reply and without counting toward operation
/// latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvStep {
    /// Send `request` to the server and feed the reply back.
    Send {
        /// The round-trip request.
        request: Request,
        /// Optional fire-and-forget follow-up.
        background: Option<Request>,
    },
    /// The operation is complete.
    Done {
        /// Final outcome.
        outcome: KvOutcome,
        /// Optional fire-and-forget follow-up.
        background: Option<Request>,
    },
}

impl KvStep {
    /// A plain send without background work.
    pub fn send(request: Request) -> Self {
        KvStep::Send {
            request,
            background: None,
        }
    }

    /// Completed without background work.
    pub fn done(outcome: KvOutcome) -> Self {
        KvStep::Done {
            outcome,
            background: None,
        }
    }

    /// The round-trip request, if this step sends one.
    pub fn request(&self) -> Option<&Request> {
        match self {
            KvStep::Send { request, .. } => Some(request),
            KvStep::Done { .. } => None,
        }
    }
}
