//! The Pilaf baseline (Mitchell et al., USENIX ATC 2013; §2.1 and §6 of
//! the PRISM paper).
//!
//! Pilaf exposes a hash-table index and an extents region over RDMA.
//! GETs are **two one-sided READs** — index entry, then data — with
//! CRC-32 checksums ("self-verifying data structures") to detect races
//! with concurrent PUTs. PUTs are **two-sided RPCs** executed by the
//! server CPU, which allocates an extent, writes the entry, and updates
//! the index.
//!
//! Index entry (32 bytes, two per cache line):
//! `[ptr u64 | size u64 | crc_data u32 | crc_entry u32 | pad u64]`,
//! where `crc_entry` covers the first 24 bytes and `crc_data` covers the
//! extent contents. A null `ptr` means the slot is empty.

use std::collections::HashMap;
use std::sync::Arc;

use prism_core::integrity::IntegrityStats;
use prism_core::msg::{Reply, Request, Verb};
use prism_core::PrismServer;
use prism_rdma::region::AccessFlags;
use prism_rdma::sync::Mutex;

use crate::crc::crc32;
use crate::entry;
use crate::hash::HashScheme;
use crate::{KvOutcome, KvStep};

/// Index entry size.
pub const ENTRY: u64 = 32;

/// Probe/retry limits (mirroring PRISM-KV's).
pub const MAX_PROBES: u64 = 64;

/// CRC-mismatch retry budget per GET.
pub const MAX_CRC_RETRIES: u32 = 16;

const RPC_PUT: u8 = 0x02;
const RPC_DELETE: u8 = 0x03;

/// Client-visible layout.
#[derive(Debug, Clone)]
pub struct PilafView {
    /// Base of the index.
    pub table_addr: u64,
    /// Rkey covering index and extents.
    pub rkey: u32,
    /// Index capacity in entries.
    pub capacity: u64,
    /// Key-to-slot mapping.
    pub scheme: HashScheme,
}

impl PilafView {
    /// Address of index entry `i`.
    pub fn entry_addr(&self, i: u64) -> u64 {
        self.table_addr + i * ENTRY
    }
}

/// Configuration (shares the shape of PRISM-KV's for fair comparison).
#[derive(Debug, Clone)]
pub struct PilafConfig {
    /// Index capacity in entries.
    pub capacity: u64,
    /// Key-to-slot mapping.
    pub scheme: HashScheme,
    /// Extent size classes, ascending.
    pub classes: Vec<crate::prism_kv::SizeClass>,
}

impl PilafConfig {
    /// The paper's evaluation configuration (§6.2).
    pub fn paper(n_keys: u64, value_len: usize) -> Self {
        let entry_len = entry::encoded_len(8, value_len) as u64;
        PilafConfig {
            capacity: n_keys,
            scheme: HashScheme::Collisionless,
            classes: vec![crate::prism_kv::SizeClass {
                buf_len: entry_len,
                count: n_keys + (n_keys / 8).max(64),
            }],
        }
    }
}

/// Server-side extent allocator state (CPU-managed; Pilaf's PUTs run on
/// the server, so no NIC free lists are involved).
struct Extents {
    /// Free extents per size class length.
    free: HashMap<u64, Vec<u64>>,
    /// Class lengths, ascending.
    class_lens: Vec<u64>,
}

impl Extents {
    fn alloc(&mut self, need: u64) -> Option<(u64, u64)> {
        let class = *self.class_lens.iter().find(|&&len| len >= need)?;
        let addr = self.free.get_mut(&class)?.pop()?;
        Some((addr, class))
    }

    fn free(&mut self, addr: u64, class: u64) {
        self.free.entry(class).or_default().push(addr);
    }
}

/// The Pilaf server.
pub struct PilafServer {
    server: Arc<PrismServer>,
    view: PilafView,
    /// Extents region `(base, len)` — the bytes at-rest rot can hit.
    extents_range: (u64, u64),
}

impl PilafServer {
    /// Builds a server for `config`.
    pub fn new(config: &PilafConfig) -> Self {
        let table_len = (config.capacity * ENTRY).next_multiple_of(64);
        let pools_len: u64 = config
            .classes
            .iter()
            .map(|c| c.buf_len.next_multiple_of(64) * c.count)
            .sum();
        let server = Arc::new(PrismServer::new(table_len + pools_len + (1 << 20)));
        let (data_base, rkey) = server.carve_region(table_len + pools_len, 64, AccessFlags::FULL);
        let table_addr = data_base;

        let mut free: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut class_lens = Vec::new();
        let mut off = table_len;
        for c in &config.classes {
            let stride = c.buf_len.next_multiple_of(64);
            let base = data_base + off;
            free.insert(c.buf_len, (0..c.count).map(|j| base + j * stride).collect());
            class_lens.push(c.buf_len);
            off += stride * c.count;
        }
        class_lens.sort_unstable();

        let view = PilafView {
            table_addr,
            rkey: rkey.0,
            capacity: config.capacity,
            scheme: config.scheme,
        };

        // The PUT/DELETE RPC handler: this is the server CPU work PRISM-KV
        // eliminates.
        let extents = Arc::new(Mutex::new(Extents { free, class_lens }));
        let handler_server = Arc::clone(&server);
        let handler_view = view.clone();
        server.set_rpc_handler(Arc::new(move |req: &[u8]| {
            handle_rpc(&handler_server, &handler_view, &extents, req)
        }));

        PilafServer {
            server,
            view,
            extents_range: (data_base + table_len, pools_len),
        }
    }

    /// The underlying host.
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// The extents region `(base, len)` — where at-rest bit rot lands.
    pub fn extents_range(&self) -> (u64, u64) {
        self.extents_range
    }

    /// Walks the index verifying both checksum layers; returns
    /// `(live, corrupt)` entry counts. Everything the scrub cannot
    /// vouch for is *detectably* corrupt — a GET would observe the
    /// same mismatch and abort rather than return the bytes.
    pub fn scrub(&self) -> (u64, u64) {
        let mut live = 0u64;
        let mut corrupt = 0u64;
        for i in 0..self.view.capacity {
            let (e, ptr, size, crc_data) = read_entry(&self.server, self.view.entry_addr(i));
            if ptr == 0 {
                continue;
            }
            if !entry_crc_ok(&e) {
                corrupt += 1;
                continue;
            }
            let data = self
                .server
                .arena()
                .read(ptr, size)
                .expect("extent in arena");
            if crc32(&data) == crc_data {
                live += 1;
            } else {
                corrupt += 1;
            }
        }
        (live, corrupt)
    }

    /// The client-visible layout.
    pub fn view(&self) -> &PilafView {
        &self.view
    }

    /// Opens a client handle.
    pub fn open_client(&self) -> PilafClient {
        PilafClient {
            view: self.view.clone(),
            integrity: Arc::new(IntegrityStats::new()),
        }
    }
}

impl std::fmt::Debug for PilafServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PilafServer")
            .field("capacity", &self.view.capacity)
            .finish_non_exhaustive()
    }
}

fn read_entry(server: &PrismServer, addr: u64) -> ([u8; 32], u64, u64, u32) {
    let bytes = server.arena().read(addr, ENTRY).expect("index in arena");
    let mut e = [0u8; 32];
    e.copy_from_slice(&bytes);
    let ptr = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
    let size = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
    let crc_data = u32::from_le_bytes(e[16..20].try_into().expect("4 bytes"));
    (e, ptr, size, crc_data)
}

fn write_entry(server: &PrismServer, addr: u64, ptr: u64, size: u64, crc_data: u32) {
    let mut e = [0u8; 32];
    e[0..8].copy_from_slice(&ptr.to_le_bytes());
    e[8..16].copy_from_slice(&size.to_le_bytes());
    e[16..20].copy_from_slice(&crc_data.to_le_bytes());
    // The checksum covers the first 24 bytes with the crc_entry field
    // itself zeroed; `entry_crc_ok` mirrors this on the read side.
    let crc_entry = crc32(&e[0..24]);
    e[20..24].copy_from_slice(&crc_entry.to_le_bytes());
    server.arena().write(addr, &e).expect("index in arena");
}

/// Verifies the entry checksum the same way the writer computed it.
fn entry_crc_ok(e: &[u8; 32]) -> bool {
    let stored = u32::from_le_bytes(e[20..24].try_into().expect("4 bytes"));
    let mut copy = *e;
    copy[20..24].fill(0);
    crc32(&copy[0..24]) == stored
}

fn handle_rpc(
    server: &PrismServer,
    view: &PilafView,
    extents: &Mutex<Extents>,
    req: &[u8],
) -> Vec<u8> {
    if req.is_empty() {
        return vec![0xFF];
    }
    match req[0] {
        RPC_PUT => {
            let Some((key, value)) = entry::decode(&req[1..]) else {
                return vec![0xFF];
            };
            let payload = entry::encode(key, value);
            // Probe for the key's slot (or the first empty one).
            let Some((slot_addr, old)) = probe_server_side(server, view, key) else {
                return vec![0xFE]; // table full
            };
            let Some((new_ptr, class)) = extents.lock().alloc(payload.len() as u64) else {
                return vec![0xFD]; // out of extents
            };
            server
                .arena()
                .write(new_ptr, &payload)
                .expect("extent in arena");
            let crc_data = crc32(&payload);
            write_entry(server, slot_addr, new_ptr, payload.len() as u64, crc_data);
            if let Some((old_ptr, old_size)) = old {
                let mut ex = extents.lock();
                let class_of_old = ex
                    .class_lens
                    .iter()
                    .copied()
                    .find(|&len| len >= old_size)
                    .unwrap_or(class);
                ex.free(old_ptr, class_of_old);
            }
            vec![0]
        }
        RPC_DELETE => {
            let key = &req[1..];
            let Some((slot_addr, old)) = probe_server_side(server, view, key) else {
                return vec![0];
            };
            if let Some((old_ptr, old_size)) = old {
                write_entry(server, slot_addr, 0, 0, 0);
                let mut ex = extents.lock();
                let class = ex
                    .class_lens
                    .iter()
                    .copied()
                    .find(|&len| len >= old_size)
                    .expect("old extent had a class");
                ex.free(old_ptr, class);
            }
            vec![0]
        }
        _ => vec![0xFF],
    }
}

/// Server-side probe: returns the slot for `key` (matching or first
/// empty) and the old `(ptr, size)` if the key is present.
#[allow(clippy::type_complexity)]
fn probe_server_side(
    server: &PrismServer,
    view: &PilafView,
    key: &[u8],
) -> Option<(u64, Option<(u64, u64)>)> {
    let limit = match view.scheme {
        HashScheme::Collisionless => 1,
        HashScheme::Fnv => MAX_PROBES.min(view.capacity),
    };
    for attempt in 0..limit {
        let slot = view.scheme.slot(key, attempt, view.capacity);
        let addr = view.entry_addr(slot);
        let (e, ptr, size, crc_data) = read_entry(server, addr);
        if ptr == 0 {
            return Some((addr, None));
        }
        if !entry_crc_ok(&e) {
            // Rotted index entry: `ptr`/`size` can't be trusted, so the
            // extent (if any) is leaked, but the slot is reclaimed — the
            // PUT that lands here is the repair.
            return Some((addr, None));
        }
        let data = server.arena().read(ptr, size).expect("extent in arena");
        if crc32(&data) != crc_data {
            // Rotted extent: detectably corrupt for every reader. Reclaim
            // the slot and recycle the extent; without this, a damaged
            // entry would shadow its probe position forever.
            return Some((addr, Some((ptr, size))));
        }
        if entry::decode_key(&data) == Some(key) {
            return Some((addr, Some((ptr, size))));
        }
    }
    None
}

/// A Pilaf client.
#[derive(Debug, Clone)]
pub struct PilafClient {
    view: PilafView,
    integrity: Arc<IntegrityStats>,
}

impl PilafClient {
    /// The layout this client addresses.
    pub fn view(&self) -> &PilafView {
        &self.view
    }

    /// Shares an integrity-stats sink (e.g. the harness's) instead of
    /// the client's private one.
    pub fn with_integrity(mut self, stats: Arc<IntegrityStats>) -> Self {
        self.integrity = stats;
        self
    }

    /// Corruption detections, repairs, and aborts observed by this
    /// client's CRC machinery.
    pub fn integrity(&self) -> &Arc<IntegrityStats> {
        &self.integrity
    }

    /// Starts a GET; returns the machine and its first request (the
    /// index READ).
    pub fn get(&self, key: &[u8]) -> (PilafGetOp, Request) {
        let op = PilafGetOp {
            key: key.to_vec(),
            attempt: 0,
            crc_retries: 0,
            state: GetState::Index,
        };
        let req = op.index_request(self);
        (op, req)
    }

    /// Builds a PUT RPC (single round trip; the server CPU does the
    /// work).
    pub fn put_request(&self, key: &[u8], value: &[u8]) -> Request {
        let mut msg = Vec::with_capacity(1 + entry::encoded_len(key.len(), value.len()));
        msg.push(RPC_PUT);
        msg.extend_from_slice(&entry::encode(key, value));
        Request::Rpc(msg)
    }

    /// Interprets a PUT RPC reply.
    pub fn put_outcome(&self, reply: Reply) -> KvOutcome {
        match reply.into_rpc().first() {
            Some(0) => KvOutcome::Written,
            Some(0xFE) => KvOutcome::Failed("hash table full along probe path"),
            Some(0xFD) => KvOutcome::Failed("out of extents"),
            _ => KvOutcome::Failed("PUT rejected"),
        }
    }

    /// Builds a DELETE RPC.
    pub fn delete_request(&self, key: &[u8]) -> Request {
        let mut msg = Vec::with_capacity(1 + key.len());
        msg.push(RPC_DELETE);
        msg.extend_from_slice(key);
        Request::Rpc(msg)
    }
}

#[derive(Debug, Clone)]
enum GetState {
    Index,
    Data { crc_data: u32 },
}

/// Pilaf GET state machine: index READ, then data READ, with CRC
/// verification and retry (§6: "CRC calculations that Pilaf uses to
/// detect concurrent updates").
#[derive(Debug, Clone)]
pub struct PilafGetOp {
    key: Vec<u8>,
    attempt: u64,
    crc_retries: u32,
    state: GetState,
}

impl PilafGetOp {
    fn index_request(&self, c: &PilafClient) -> Request {
        let slot = c.view.scheme.slot(&self.key, self.attempt, c.view.capacity);
        Request::Verb(Verb::Read {
            addr: c.view.entry_addr(slot),
            len: ENTRY as u32,
            rkey: c.view.rkey,
        })
    }

    /// Feeds a reply; returns the next step.
    pub fn on_reply(&mut self, c: &PilafClient, reply: Reply) -> KvStep {
        let bytes = match reply.into_verb() {
            Ok(b) => b,
            Err(_) => return self.finish(c, KvOutcome::Failed("READ error")),
        };
        match self.state.clone() {
            GetState::Index => {
                let mut e = [0u8; 32];
                if bytes.len() != 32 {
                    return self.finish(c, KvOutcome::Failed("short index read"));
                }
                e.copy_from_slice(&bytes);
                let ptr = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
                if ptr == 0 {
                    // Never-written slots are all-zero (no checksum);
                    // deleted slots carry a valid checksum over zeros.
                    // Either way the key is absent.
                    return self.finish(c, KvOutcome::Value(None));
                }
                if !entry_crc_ok(&e) {
                    return self.crc_retry(c);
                }
                let size = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
                let crc_data = u32::from_le_bytes(e[16..20].try_into().expect("4 bytes"));
                self.state = GetState::Data { crc_data };
                KvStep::send(Request::Verb(Verb::Read {
                    addr: ptr,
                    len: size as u32,
                    rkey: c.view.rkey,
                }))
            }
            GetState::Data { crc_data, .. } => {
                if crc32(&bytes) != crc_data {
                    // The extent was recycled under us: restart from the
                    // index entry.
                    return self.crc_retry(c);
                }
                match entry::decode(&bytes) {
                    Some((k, v)) if k == self.key => {
                        let v = v.to_vec();
                        self.finish(c, KvOutcome::Value(Some(v)))
                    }
                    Some(_) => {
                        // Different key: linear probe onward.
                        self.attempt += 1;
                        let limit = match c.view.scheme {
                            HashScheme::Collisionless => 1,
                            HashScheme::Fnv => MAX_PROBES.min(c.view.capacity),
                        };
                        if self.attempt >= limit {
                            return self.finish(c, KvOutcome::Value(None));
                        }
                        self.state = GetState::Index;
                        KvStep::send(self.index_request(c))
                    }
                    None => self.crc_retry(c),
                }
            }
        }
    }

    fn crc_retry(&mut self, c: &PilafClient) -> KvStep {
        // Every mismatch is a detection — under benign churn it is a
        // racing writer and the retry repairs it; under injected rot
        // the budget runs dry and the GET aborts.
        c.integrity.note_detected();
        self.crc_retries += 1;
        if self.crc_retries > MAX_CRC_RETRIES {
            return self.finish(c, KvOutcome::Failed("persistent CRC mismatch"));
        }
        self.state = GetState::Index;
        KvStep::send(self.index_request(c))
    }

    /// Terminal step with integrity accounting: a GET that saw at least
    /// one CRC mismatch either recovered (repaired) or gave up clean
    /// (aborted) — never a silent wrong answer.
    fn finish(&self, c: &PilafClient, outcome: KvOutcome) -> KvStep {
        if self.crc_retries > 0 {
            match outcome {
                KvOutcome::Failed(_) => c.integrity.note_aborted(),
                _ => c.integrity.note_repaired(),
            }
        }
        KvStep::done(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::msg::execute_local;

    fn drive_get(s: &PilafServer, c: &PilafClient, key: &[u8]) -> (KvOutcome, u32) {
        let (mut op, req) = c.get(key);
        let mut rtts = 1;
        let mut reply = execute_local(s.server(), &req);
        loop {
            match op.on_reply(c, reply) {
                KvStep::Send { request, .. } => {
                    rtts += 1;
                    reply = execute_local(s.server(), &request);
                }
                KvStep::Done { outcome, .. } => return (outcome, rtts),
            }
        }
    }

    fn put(s: &PilafServer, c: &PilafClient, key: &[u8], value: &[u8]) -> KvOutcome {
        let reply = execute_local(s.server(), &c.put_request(key, value));
        c.put_outcome(reply)
    }

    fn store() -> (PilafServer, PilafClient) {
        let cfg = PilafConfig {
            capacity: 64,
            scheme: HashScheme::Fnv,
            classes: vec![
                crate::prism_kv::SizeClass {
                    buf_len: 64,
                    count: 32,
                },
                crate::prism_kv::SizeClass {
                    buf_len: 256,
                    count: 32,
                },
            ],
        };
        let s = PilafServer::new(&cfg);
        let c = s.open_client();
        (s, c)
    }

    #[test]
    fn get_missing_key() {
        let (s, c) = store();
        let (o, rtts) = drive_get(&s, &c, b"nope");
        assert_eq!(o, KvOutcome::Value(None));
        assert_eq!(rtts, 1, "empty slot detected from the index read alone");
    }

    #[test]
    fn put_then_get_takes_two_reads() {
        let (s, c) = store();
        assert_eq!(put(&s, &c, b"alpha", b"beta"), KvOutcome::Written);
        let (o, rtts) = drive_get(&s, &c, b"alpha");
        assert_eq!(o, KvOutcome::Value(Some(b"beta".to_vec())));
        assert_eq!(rtts, 2, "Pilaf GET = index READ + data READ (§2.1)");
    }

    #[test]
    fn overwrite_updates_value() {
        let (s, c) = store();
        put(&s, &c, b"k", b"v1");
        put(&s, &c, b"k", b"v2");
        let (o, _) = drive_get(&s, &c, b"k");
        assert_eq!(o, KvOutcome::Value(Some(b"v2".to_vec())));
    }

    #[test]
    fn overwrite_recycles_extents() {
        let (s, c) = store();
        for i in 0..100u8 {
            assert_eq!(put(&s, &c, b"hot", &[i; 16]), KvOutcome::Written);
        }
        // 32 extents of the small class exist; 100 PUTs only succeed if
        // old extents are freed.
    }

    #[test]
    fn delete_empties_slot() {
        let (s, c) = store();
        put(&s, &c, b"k", b"v");
        execute_local(s.server(), &c.delete_request(b"k"));
        let (o, _) = drive_get(&s, &c, b"k");
        assert_eq!(o, KvOutcome::Value(None));
    }

    #[test]
    fn colliding_keys_probe() {
        let cfg = PilafConfig {
            capacity: 4,
            scheme: HashScheme::Fnv,
            classes: vec![crate::prism_kv::SizeClass {
                buf_len: 64,
                count: 16,
            }],
        };
        let s = PilafServer::new(&cfg);
        let c = s.open_client();
        for i in 0..4u8 {
            assert_eq!(put(&s, &c, &[b'k', i], &[b'v', i]), KvOutcome::Written);
        }
        for i in 0..4u8 {
            let (o, _) = drive_get(&s, &c, &[b'k', i]);
            assert_eq!(o, KvOutcome::Value(Some(vec![b'v', i])));
        }
    }

    #[test]
    fn crc_detects_corruption() {
        let (s, c) = store();
        put(&s, &c, b"key", b"value");
        // Corrupt the extent under the index's feet.
        let slot = s.view().scheme.slot(b"key", 0, s.view().capacity);
        let (_, ptr, _, _) = read_entry(s.server(), s.view().entry_addr(slot));
        s.server()
            .arena()
            .write(ptr + entry::HEADER as u64, b"X")
            .unwrap();
        let (o, _) = drive_get(&s, &c, b"key");
        assert_eq!(o, KvOutcome::Failed("persistent CRC mismatch"));
        // Every mismatch was counted and the op ended as a clean abort.
        assert_eq!(c.integrity().detected(), (MAX_CRC_RETRIES + 1) as u64);
        assert_eq!(c.integrity().aborted(), 1);
        assert_eq!(s.scrub().1, 1, "scrub confirms one damaged extent");
        // Overwriting installs a fresh extent + checksums: healed.
        assert_eq!(put(&s, &c, b"key", b"fresh"), KvOutcome::Written);
        assert_eq!(s.scrub().1, 0);
        let (o, _) = drive_get(&s, &c, b"key");
        assert_eq!(o, KvOutcome::Value(Some(b"fresh".to_vec())));
        assert_eq!(c.integrity().repaired(), 0, "clean GET counts nothing");
    }

    #[test]
    fn paper_config_round_trip() {
        let cfg = PilafConfig::paper(32, 64);
        let s = PilafServer::new(&cfg);
        let c = s.open_client();
        use crate::hash::key_bytes;
        for k in 0..32u64 {
            assert_eq!(
                put(&s, &c, &key_bytes(k), &[k as u8; 64]),
                KvOutcome::Written
            );
        }
        for k in 0..32u64 {
            let (o, rtts) = drive_get(&s, &c, &key_bytes(k));
            assert_eq!(o, KvOutcome::Value(Some(vec![k as u8; 64])));
            assert_eq!(rtts, 2);
        }
    }

    #[test]
    fn concurrent_gets_and_puts_never_return_torn_values() {
        use std::sync::Arc;
        let cfg = PilafConfig::paper(8, 32);
        let s = Arc::new(PilafServer::new(&cfg));
        let key = crate::hash::key_bytes(1);
        // Pre-populate.
        {
            let c = s.open_client();
            put(&s, &c, &key, &[0u8; 32]);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let c = s.open_client();
                let mut i = 1u8;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    put(&s, &c, &crate::hash::key_bytes(1), &[i; 32]);
                    i = i.wrapping_add(1);
                }
            })
        };
        let c = s.open_client();
        for _ in 0..2_000 {
            match drive_get(&s, &c, &key).0 {
                KvOutcome::Value(Some(v)) => {
                    assert!(v.iter().all(|&b| b == v[0]), "torn value: {v:?}");
                }
                KvOutcome::Value(None) => panic!("key vanished"),
                KvOutcome::Failed(_) => {} // CRC retry budget exhausted under churn: acceptable
                KvOutcome::Written => unreachable!("GET never reports Written"),
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }
}
