//! CRC-32 (IEEE 802.3 polynomial), used by the Pilaf baseline.
//!
//! Pilaf detects get/put races with "self-verifying data structures":
//! every index entry and extent carries a checksum, and a reader that
//! observes a mismatch retries (§6, [31]). PRISM-KV's out-of-place
//! updates make these checksums unnecessary — one of the measured
//! advantages in Figure 3 (the paper attributes ~2 µs of Pilaf's GET
//! latency to CRC computation).

/// The reflected CRC-32 polynomial (IEEE).
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time table, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_seeded(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Continues a CRC computation (pass the running register, not the
/// finalized value).
fn crc32_seeded(mut reg: u32, data: &[u8]) -> u32 {
    let t = table();
    for &b in data {
        reg = (reg >> 8) ^ t[((reg ^ b as u32) & 0xFF) as usize];
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut corrupted = data.to_vec();
        for i in 0..corrupted.len() {
            corrupted[i] ^= 1;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
            corrupted[i] ^= 1;
        }
    }

    #[test]
    fn different_lengths_differ() {
        assert_ne!(crc32(b"abc"), crc32(b"abc\0"));
    }
}
