//! CRC-32 (IEEE 802.3 polynomial), used by the Pilaf baseline.
//!
//! Pilaf detects get/put races with "self-verifying data structures":
//! every index entry and extent carries a checksum, and a reader that
//! observes a mismatch retries (§6, [31]). Since PR 5 the same
//! discipline extends to the wire framing and every value layout, so
//! the implementation lives in [`prism_core::crc`]; this module
//! re-exports it under the historical path for the Pilaf code and its
//! callers.

pub use prism_core::crc::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_matches_known_vector() {
        // Standard check value for "123456789" — guards the re-export
        // against ever pointing at a different polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
