//! Key hashing and slot probing.
//!
//! Both stores index keys into a fixed-capacity slot array with linear
//! probing on collision (Pilaf's paper also supports cuckoo hashing; the
//! PRISM evaluation "use[s] a collisionless hash function", §6.2, so the
//! figure runs use [`HashScheme::Collisionless`] and the general path is
//! FNV-1a with linear probing).

/// How keys map to hash-table slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashScheme {
    /// FNV-1a over the key bytes; collisions resolved by linear probing.
    Fnv,
    /// The evaluation mode (§6.2): keys are little-endian u64 indices in
    /// `[0, capacity)`, mapped to themselves. Requires 8-byte keys.
    Collisionless,
}

/// FNV-1a 64-bit hash.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl HashScheme {
    /// The slot for `key` on probe attempt `attempt` (0-based), in a
    /// table of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics in `Collisionless` mode if the key is not exactly 8 bytes
    /// or indexes outside the table — that mode is only for generated
    /// workloads whose key space matches the table.
    pub fn slot(self, key: &[u8], attempt: u64, capacity: u64) -> u64 {
        debug_assert!(capacity > 0);
        match self {
            HashScheme::Fnv => (fnv1a(key).wrapping_add(attempt)) % capacity,
            HashScheme::Collisionless => {
                let k = u64::from_le_bytes(
                    key.try_into()
                        .expect("collisionless mode needs 8-byte keys"),
                );
                assert!(k < capacity, "key {k} outside collisionless table");
                (k + attempt) % capacity
            }
        }
    }
}

/// Encodes a u64 workload key as the 8-byte key both stores use in the
/// figure experiments ("8 byte keys", §6.2).
pub fn key_bytes(k: u64) -> [u8; 8] {
    k.to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distributes() {
        // Adjacent keys should not collide in a modest table.
        let capacity = 1024;
        let mut slots: Vec<u64> = (0..100u64)
            .map(|k| HashScheme::Fnv.slot(&key_bytes(k), 0, capacity))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert!(slots.len() > 90, "too many collisions: {}", slots.len());
    }

    #[test]
    fn probing_advances_one_slot() {
        let s0 = HashScheme::Fnv.slot(b"key", 0, 100);
        let s1 = HashScheme::Fnv.slot(b"key", 1, 100);
        assert_eq!((s0 + 1) % 100, s1);
    }

    #[test]
    fn collisionless_is_identity() {
        for k in [0u64, 5, 99] {
            assert_eq!(HashScheme::Collisionless.slot(&key_bytes(k), 0, 100), k);
        }
    }

    #[test]
    #[should_panic(expected = "outside collisionless table")]
    fn collisionless_range_checked() {
        HashScheme::Collisionless.slot(&key_bytes(100), 0, 100);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
