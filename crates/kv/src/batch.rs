//! Doorbell-batched multi-GET drivers.
//!
//! RDMA NICs amortize submission cost by ringing the doorbell once for a
//! list of work requests. The message layer mirrors this with
//! [`Request::Batch`]: a client drives N independent GET state machines
//! and, each round, posts every outstanding request in a single
//! submission, then drains one [`Reply::Batch`] of completions. The
//! per-machine protocols are untouched — batching lives entirely in the
//! driver, exactly as doorbell batching lives in the verbs layer and not
//! in the application logic.
//!
//! For PRISM-KV a multi-GET usually completes in **one** round (every
//! GET is a single bounded indirect READ); for Pilaf it takes two rounds
//! (index READs, then data READs) instead of `2 × N` sequential round
//! trips.

use prism_core::msg::{Reply, Request};

use crate::pilaf::{PilafClient, PilafGetOp};
use crate::prism_kv::{GetOp, PrismKvClient};
use crate::{KvOutcome, KvStep};

/// Drives a set of state machines to completion over a batching
/// transport. `exec` submits one request (here: always a
/// [`Request::Batch`]) and returns its reply. Returns the per-key
/// outcomes in input order plus the number of doorbell rounds.
fn drive_batched<M>(
    mut exec: impl FnMut(Request) -> Reply,
    starts: Vec<(M, Request)>,
    mut step: impl FnMut(&mut M, Reply) -> KvStep,
) -> (Vec<KvOutcome>, u64) {
    let n = starts.len();
    let mut machines: Vec<Option<M>> = Vec::with_capacity(n);
    let mut pending: Vec<(usize, Request)> = Vec::with_capacity(n);
    let mut outcomes: Vec<Option<KvOutcome>> = (0..n).map(|_| None).collect();
    for (i, (m, req)) in starts.into_iter().enumerate() {
        machines.push(Some(m));
        pending.push((i, req));
    }

    let mut rounds = 0;
    while !pending.is_empty() {
        rounds += 1;
        // Ring the doorbell once for every outstanding request.
        let (order, reqs): (Vec<usize>, Vec<Request>) = pending.drain(..).unzip();
        let replies = exec(Request::Batch(reqs)).into_batch();
        assert_eq!(
            replies.len(),
            order.len(),
            "one completion per work request"
        );
        let mut background: Vec<Request> = Vec::new();
        for (i, reply) in order.into_iter().zip(replies) {
            let m = machines[i].as_mut().expect("pending machine is live");
            match step(m, reply) {
                KvStep::Send {
                    request,
                    background: bg,
                } => {
                    pending.push((i, request));
                    background.extend(bg);
                }
                KvStep::Done {
                    outcome,
                    background: bg,
                } => {
                    outcomes[i] = Some(outcome);
                    machines[i] = None;
                    background.extend(bg);
                }
            }
        }
        // Fire-and-forget follow-ups ride the next doorbell's coattails:
        // submit them as one batch too, ignoring the replies.
        if !background.is_empty() {
            exec(Request::Batch(background));
        }
    }
    (
        outcomes
            .into_iter()
            .map(|o| o.expect("every machine completed"))
            .collect(),
        rounds,
    )
}

/// Batched Pilaf multi-GET: each round posts the outstanding READs of
/// every in-flight GET as one doorbell batch. Returns outcomes in key
/// order and the number of rounds (2 for uncontended hits: index READs,
/// then data READs).
pub fn pilaf_get_many(
    client: &PilafClient,
    keys: &[Vec<u8>],
    exec: impl FnMut(Request) -> Reply,
) -> (Vec<KvOutcome>, u64) {
    let starts: Vec<(PilafGetOp, Request)> = keys.iter().map(|k| client.get(k)).collect();
    drive_batched(exec, starts, |m, reply| m.on_reply(client, reply))
}

/// Batched PRISM-KV multi-GET: posts every GET's bounded indirect READ
/// in one doorbell batch (1 round for uncontended hits).
pub fn prism_kv_get_many(
    client: &PrismKvClient,
    keys: &[Vec<u8>],
    exec: impl FnMut(Request) -> Reply,
) -> (Vec<KvOutcome>, u64) {
    let starts: Vec<(GetOp, Request)> = keys.iter().map(|k| client.get(k)).collect();
    drive_batched(exec, starts, |m, reply| m.on_reply(client, reply))
}

/// Cross-shard doorbell-batched PRISM-KV multi-GET.
///
/// One logical multi-GET over a sharded cluster: `route` names each
/// key's home shard, `clients[shard]` is that shard's protocol client,
/// and `exec(shard, req)` submits one request to that shard. Each
/// round, every outstanding request is grouped by home shard and posted
/// as **one [`Request::Batch`] doorbell per involved shard**; the
/// per-shard completion batches are merged back into key order before
/// the next round. Per-shard background follow-ups (free notifications)
/// ride their own shard's next doorbell.
///
/// Returns the outcomes in key order, the total doorbells rung
/// (foreground batches only — the cross-shard fan-out cost), and the
/// number of rounds (still 1 for uncontended PRISM-KV hits: sharding
/// widens the fan-out, not the dependency depth).
pub fn prism_kv_get_many_sharded(
    clients: &[PrismKvClient],
    route: impl Fn(&[u8]) -> usize,
    keys: &[Vec<u8>],
    mut exec: impl FnMut(usize, Request) -> Reply,
) -> (Vec<KvOutcome>, u64, u64) {
    let n = keys.len();
    let shards = clients.len();
    let mut machines: Vec<Option<GetOp>> = Vec::with_capacity(n);
    let mut home: Vec<usize> = Vec::with_capacity(n);
    let mut pending: Vec<(usize, Request)> = Vec::with_capacity(n);
    let mut outcomes: Vec<Option<KvOutcome>> = (0..n).map(|_| None).collect();
    for (i, key) in keys.iter().enumerate() {
        let shard = route(key);
        assert!(shard < shards, "route() past the client table");
        let (m, req) = clients[shard].get(key);
        machines.push(Some(m));
        home.push(shard);
        pending.push((i, req));
    }

    let mut doorbells = 0u64;
    let mut rounds = 0u64;
    while !pending.is_empty() {
        rounds += 1;
        // Group this round's work requests by home shard, preserving
        // key order within each group.
        let mut groups: Vec<(Vec<usize>, Vec<Request>)> =
            (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, req) in pending.drain(..) {
            groups[home[i]].0.push(i);
            groups[home[i]].1.push(req);
        }
        let mut background: Vec<(usize, Vec<Request>)> = Vec::new();
        for (shard, (order, reqs)) in groups.into_iter().enumerate() {
            if order.is_empty() {
                continue;
            }
            // One doorbell for this shard's slice of the logical batch.
            doorbells += 1;
            let replies = exec(shard, Request::Batch(reqs)).into_batch();
            assert_eq!(
                replies.len(),
                order.len(),
                "one completion per work request"
            );
            let mut bg: Vec<Request> = Vec::new();
            for (i, reply) in order.into_iter().zip(replies) {
                let m = machines[i].as_mut().expect("pending machine is live");
                match m.on_reply(&clients[shard], reply) {
                    KvStep::Send {
                        request,
                        background,
                    } => {
                        pending.push((i, request));
                        bg.extend(background);
                    }
                    KvStep::Done {
                        outcome,
                        background,
                    } => {
                        outcomes[i] = Some(outcome);
                        machines[i] = None;
                        bg.extend(background);
                    }
                }
            }
            if !bg.is_empty() {
                background.push((shard, bg));
            }
        }
        // Fire-and-forget follow-ups ride each shard's next doorbell.
        for (shard, bg) in background {
            exec(shard, Request::Batch(bg));
        }
    }
    (
        outcomes
            .into_iter()
            .map(|o| o.expect("every machine completed"))
            .collect(),
        doorbells,
        rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_bytes;
    use crate::pilaf::{PilafConfig, PilafServer};
    use crate::prism_kv::{PrismKvConfig, PrismKvServer};
    use prism_core::msg::execute_local;

    #[test]
    fn pilaf_multi_get_takes_two_rounds() {
        let s = PilafServer::new(&PilafConfig::paper(32, 16));
        let c = s.open_client();
        let keys: Vec<Vec<u8>> = (0..16u64).map(|k| key_bytes(k).to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            let reply = execute_local(s.server(), &c.put_request(k, &[i as u8; 16]));
            assert_eq!(c.put_outcome(reply), KvOutcome::Written);
        }
        let (outcomes, rounds) = pilaf_get_many(&c, &keys, |req| execute_local(s.server(), &req));
        assert_eq!(rounds, 2, "index READs batched, then data READs batched");
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(*o, KvOutcome::Value(Some(vec![i as u8; 16])));
        }
    }

    #[test]
    fn prism_kv_multi_get_takes_one_round() {
        let s = PrismKvServer::new(&PrismKvConfig::paper(32, 16));
        let c = s.open_client();
        let keys: Vec<Vec<u8>> = (0..8u64).map(|k| key_bytes(k).to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            let (mut op, req) = c.put(k, &[i as u8; 16]);
            let mut reply = execute_local(s.server(), &req);
            loop {
                match op.on_reply(&c, reply) {
                    KvStep::Send {
                        request,
                        background,
                    } => {
                        if let Some(b) = background {
                            execute_local(s.server(), &b);
                        }
                        reply = execute_local(s.server(), &request);
                    }
                    KvStep::Done { outcome, .. } => {
                        assert_eq!(outcome, KvOutcome::Written);
                        break;
                    }
                }
            }
        }
        let (outcomes, rounds) =
            prism_kv_get_many(&c, &keys, |req| execute_local(s.server(), &req));
        assert_eq!(rounds, 1, "every GET is one bounded indirect READ");
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(*o, KvOutcome::Value(Some(vec![i as u8; 16])));
        }
    }

    fn put_local(s: &PrismKvServer, c: &PrismKvClient, key: &[u8], value: &[u8]) {
        let (mut op, req) = c.put(key, value);
        let mut reply = execute_local(s.server(), &req);
        loop {
            match op.on_reply(c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    if let Some(b) = background {
                        execute_local(s.server(), &b);
                    }
                    reply = execute_local(s.server(), &request);
                }
                KvStep::Done { outcome, .. } => {
                    assert_eq!(outcome, KvOutcome::Written);
                    break;
                }
            }
        }
    }

    #[test]
    fn sharded_multi_get_rings_one_doorbell_per_shard() {
        let config = PrismKvConfig::paper(32, 16);
        let servers: Vec<PrismKvServer> = (0..2).map(|_| PrismKvServer::new(&config)).collect();
        let clients: Vec<PrismKvClient> = servers.iter().map(|s| s.open_client()).collect();
        let route = |k: &[u8]| (k[0] & 1) as usize;
        let keys: Vec<Vec<u8>> = (0..8u64).map(|k| key_bytes(k).to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            let shard = route(k);
            put_local(&servers[shard], &clients[shard], k, &[i as u8; 16]);
        }
        let (outcomes, doorbells, rounds) =
            prism_kv_get_many_sharded(&clients, route, &keys, |shard, req| {
                execute_local(servers[shard].server(), &req)
            });
        assert_eq!(rounds, 1, "sharding widens fan-out, not dependency depth");
        assert_eq!(doorbells, 2, "one doorbell per involved shard, not per key");
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(*o, KvOutcome::Value(Some(vec![i as u8; 16])));
        }
        // A batch restricted to one shard's keys rings one doorbell.
        let even: Vec<Vec<u8>> = keys.iter().filter(|k| route(k) == 0).cloned().collect();
        let (_, doorbells, _) = prism_kv_get_many_sharded(&clients, route, &even, |shard, req| {
            execute_local(servers[shard].server(), &req)
        });
        assert_eq!(doorbells, 1);
    }

    #[test]
    fn missing_and_present_keys_mix() {
        let s = PilafServer::new(&PilafConfig::paper(16, 8));
        let c = s.open_client();
        let reply = execute_local(s.server(), &c.put_request(&key_bytes(3), b"present!"));
        assert_eq!(c.put_outcome(reply), KvOutcome::Written);
        let keys = vec![key_bytes(3).to_vec(), key_bytes(7).to_vec()];
        let (outcomes, _) = pilaf_get_many(&c, &keys, |req| execute_local(s.server(), &req));
        assert_eq!(outcomes[0], KvOutcome::Value(Some(b"present!".to_vec())));
        assert_eq!(outcomes[1], KvOutcome::Value(None));
    }

    #[test]
    fn batch_wire_len_amortizes_headers() {
        // One doorbell batch of N READs costs less on the wire than N
        // separate submissions' framing.
        let reqs: Vec<Request> = (0..16)
            .map(|i| {
                Request::Verb(prism_core::msg::Verb::Read {
                    addr: i * 64,
                    len: 32,
                    rkey: 1,
                })
            })
            .collect();
        let singly: u64 = reqs.iter().map(Request::wire_len).sum();
        let batched = Request::Batch(reqs).wire_len();
        assert_eq!(batched, singly + 8);
    }
}
