//! PRISM-KV: the paper's one-sided key-value store (§6.1).
//!
//! Layout: a hash table of 16-byte `(ptr, bound)` slots in one registered
//! data region that also contains the ALLOCATE buffer pools, so indirect
//! operations satisfy the same-rkey rule (§3.1). Entries are
//! `[klen | vlen | key | value]` ([`crate::entry`]) in write-once
//! buffers.
//!
//! * **GET** — one bounded indirect READ of the slot (§6.1): the engine
//!   follows the pointer and returns at most `bound` bytes. The client
//!   verifies the key and linearly probes on a mismatch. An empty slot
//!   NACKs (null pointer), which the client interprets as absence.
//! * **PUT** — one probe round trip (slot word + entry key, chained),
//!   then one install round trip: WRITE the bound into connection
//!   scratch, ALLOCATE the new entry with its address redirected into
//!   scratch, then a conditional 16-byte CAS that installs
//!   `(new_ptr, bound)` if the slot still holds what the probe saw. A
//!   final unconditional READ of scratch returns the new pointer so the
//!   client can reclaim the buffer if the CAS lost a race.
//! * **DELETE** — probe, then CAS the slot to null (footnote 2 of the
//!   paper discusses slot reuse; we use the same heavy-handed
//!   compare-the-pointer approach).
//!
//! Reclamation is client-driven (§3.2): the winner frees the replaced
//! buffer, a loser frees its own orphan, via a fire-and-forget RPC the
//! server CPU turns into a gated repost.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use prism_core::builder::ops;
use prism_core::integrity::IntegrityStats;
use prism_core::msg::{Reply, Request};
use prism_core::op::{full_mask, DataArg, FreeListId, Redirect};
use prism_core::value::CasMode;
use prism_core::{ChainObserver, OpResult, OpStatus, PrismOp, PrismServer};
use prism_rdma::region::{AccessFlags, Rkey};
use prism_rdma::RdmaError;
use prism_store::{DurableStats, Record, SegmentStore, SimDisk};

use crate::entry;
use crate::hash::HashScheme;
use crate::{KvOutcome, KvStep};

/// Slot size: `(ptr u64 LE, bound u64 LE)`.
pub const SLOT: u64 = 16;

/// Maximum linear-probe attempts before a key is declared absent
/// (FNV mode only; collisionless mode never probes past attempt 0).
pub const MAX_PROBES: u64 = 64;

/// Retry budget for PUT/DELETE CAS races.
pub const MAX_RETRIES: u32 = 32;

/// Bounded re-read budget when a GET's entry checksum fails (the same
/// budget Pilaf gives its verify-retry loop): enough to outlast any
/// transient race, small enough that persistent rot fails fast and
/// cleanly.
pub const MAX_CRC_RETRIES: u32 = 16;

/// A buffer size class backing one free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass {
    /// Buffer length in bytes.
    pub buf_len: u64,
    /// Number of buffers to provision.
    pub count: u64,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct PrismKvConfig {
    /// Hash table capacity in slots.
    pub capacity: u64,
    /// Key-to-slot mapping.
    pub scheme: HashScheme,
    /// Largest entry (header + key + value) the store accepts; also the
    /// GET read length.
    pub max_entry_len: u32,
    /// Buffer size classes, ascending (§3.2 recommends powers of two).
    pub classes: Vec<SizeClass>,
}

impl PrismKvConfig {
    /// The paper's evaluation configuration scaled to `n_keys` keys with
    /// `value_len`-byte values and 8-byte keys (§6.2), collisionless.
    pub fn paper(n_keys: u64, value_len: usize) -> Self {
        let entry_len = entry::encoded_len(8, value_len) as u64;
        PrismKvConfig {
            capacity: n_keys,
            scheme: HashScheme::Collisionless,
            max_entry_len: entry_len as u32,
            classes: vec![SizeClass {
                buf_len: entry_len,
                // Live entries plus headroom for in-flight updates.
                count: n_keys + (n_keys / 8).max(64),
            }],
        }
    }
}

/// Everything a client needs to address the store (exchanged at
/// connection setup in a real deployment).
#[derive(Debug, Clone)]
pub struct KvView {
    /// Base of the slot array.
    pub table_addr: u64,
    /// Rkey of the data region (slots + buffer pools).
    pub data_rkey: u32,
    /// Slots in the table.
    pub capacity: u64,
    /// Key-to-slot mapping.
    pub scheme: HashScheme,
    /// GET read length.
    pub max_entry_len: u32,
    /// `(freelist id, buffer length)` per class, ascending.
    pub classes: Vec<(FreeListId, u64)>,
}

impl KvView {
    /// Address of slot `i`.
    pub fn slot_addr(&self, i: u64) -> u64 {
        self.table_addr + i * SLOT
    }

    /// Smallest class whose buffers fit `len` bytes.
    pub fn class_for(&self, len: u64) -> Option<FreeListId> {
        self.classes
            .iter()
            .find(|(_, buf_len)| *buf_len >= len)
            .map(|(id, _)| *id)
    }
}

const RPC_FREE: u8 = 0x01;
const RPC_FREE_BATCH: u8 = 0x04;

/// Chain observer installed on every KV server: watches for the
/// slot-install CAS (the linearization point of a PUT or DELETE landing
/// in the table) and appends the installed entry image to the server's
/// segment log. KV shards are single-copy — there is no peer quorum to
/// heal a lost tail from — so every record is followed by an fsync
/// barrier: the log is a write-ahead journal, and a crash can never take
/// an acknowledged update with it.
struct KvDurableTap {
    store: Arc<SegmentStore>,
    table_addr: u64,
    capacity: u64,
    max_entry_len: u64,
}

impl ChainObserver for KvDurableTap {
    fn on_chain(&self, server: &PrismServer, chain: &[PrismOp], results: &[OpResult]) {
        for (op, res) in chain.iter().zip(results) {
            let PrismOp::Cas {
                mode: CasMode::Eq,
                target,
                len: 16,
                ..
            } = op
            else {
                continue;
            };
            let table_end = self.table_addr + self.capacity * SLOT;
            if *target < self.table_addr || *target >= table_end || res.status != OpStatus::Ok {
                continue;
            }
            // The CAS succeeded: the slot now holds the new (ptr, bound).
            // A null pointer is a DELETE (logged as an empty payload); an
            // install is logged as the raw slot word followed by the full
            // entry image. The image carries its own checksum so replay
            // can re-verify it independently of the segment framing; the
            // slot word makes replay *address-preserving*, which is what
            // keeps in-flight client CAS machines sound across a restart
            // (a relocated entry would change the slot word with no
            // writer, and a resolving PUT would misread that as a racing
            // write that displaced it).
            let Ok(slot) = server.arena().read(*target, SLOT) else {
                continue;
            };
            let ptr = u64::from_le_bytes(slot[..8].try_into().expect("8 bytes"));
            let bound = u64::from_le_bytes(slot[8..16].try_into().expect("8 bytes"));
            let payload = if ptr == 0 {
                Vec::new()
            } else {
                match server.arena().read(ptr, bound.min(self.max_entry_len)) {
                    Ok(bytes) => {
                        let mut p = Vec::with_capacity(SLOT as usize + bytes.len());
                        p.extend_from_slice(&slot);
                        p.extend_from_slice(&bytes);
                        p
                    }
                    Err(_) => continue,
                }
            };
            self.store.append(&Record {
                epoch: server.current_epoch(),
                inc: server.regions().current_incarnation(),
                key: (*target - self.table_addr) / SLOT,
                payload,
            });
            self.store.barrier();
        }
    }
}

/// The PRISM-KV server: a [`PrismServer`] with the store's layout,
/// free lists, and reclaim RPC installed.
pub struct PrismKvServer {
    server: Arc<PrismServer>,
    view: KvView,
    refill: prism_rdma::sync::Mutex<Vec<RefillState>>,
    /// `(next, end)` of the registered headroom the refill daemon carves
    /// from.
    headroom: prism_rdma::sync::Mutex<(u64, u64)>,
    /// Pool extents (initial carves plus refills), shared with the
    /// reclaim RPC handler so frees of refilled buffers resolve too.
    ranges: Arc<prism_rdma::sync::Mutex<Vec<PoolRange>>>,
    /// `(base, len)` of the initial buffer pools — the live-value
    /// memory the fault fabric targets with bit rot.
    pools: (u64, u64),
    disk: Arc<SimDisk>,
    store: Arc<SegmentStore>,
    durable: Arc<DurableStats>,
}

/// Per-class refill bookkeeping for [`PrismKvServer::maybe_refill`].
#[derive(Debug)]
struct RefillState {
    id: FreeListId,
    stride: u64,
    /// Refill when availability drops below this many buffers.
    low_water: usize,
    /// Buffers added per refill.
    batch: u64,
}

struct PoolRange {
    id: FreeListId,
    base: u64,
    stride: u64,
    count: u64,
}

impl PrismKvServer {
    /// Builds a server for `config`, sizing the arena automatically.
    pub fn new(config: &PrismKvConfig) -> Self {
        let table_len = (config.capacity * SLOT).next_multiple_of(64);
        let pools_len: u64 = config
            .classes
            .iter()
            .map(|c| c.buf_len.next_multiple_of(64) * c.count)
            .sum();
        // Headroom inside the same registration feeds the refill daemon
        // (§6.1): new buffers must satisfy the indirect-GET same-rkey
        // rule, so they have to live inside the data region.
        let headroom_len = (pools_len / 4).next_multiple_of(64).max(1 << 16);
        let server = Arc::new(PrismServer::new(
            table_len + pools_len + headroom_len + (1 << 20),
        ));

        // One region spanning slots, pools, and refill headroom so
        // indirect GETs satisfy the same-rkey rule.
        let (data_base, data_rkey) =
            server.carve_region(table_len + pools_len + headroom_len, 64, AccessFlags::FULL);
        let table_addr = data_base;

        let mut off = table_len;
        let mut classes = Vec::new();
        let mut ranges = Vec::new();
        for (i, c) in config.classes.iter().enumerate() {
            let id = FreeListId(i as u32);
            let stride = c.buf_len.next_multiple_of(64);
            let base = data_base + off;
            server.freelists().register(id, c.buf_len);
            server
                .freelists()
                .post(id, (0..c.count).map(|j| base + j * stride))
                .expect("fresh free list accepts posts");
            server
                .freelists()
                .register_extent(id, base, stride, c.count);
            classes.push((id, c.buf_len));
            ranges.push(PoolRange {
                id,
                base,
                stride,
                count: c.count,
            });
            off += stride * c.count;
        }
        let ranges = Arc::new(prism_rdma::sync::Mutex::new(ranges));

        // Reclaim RPC: [RPC_FREE, addr u64 LE] or the batched form
        // [RPC_FREE_BATCH, count u16 LE, addrs...]. Frees go through
        // the checked `FreeLists::free` path: a double free or an
        // address outside any pool extent is a typed rejection, not a
        // silent allocator corruption.
        let freelists = Arc::clone(server.freelists());
        let handler_ranges = Arc::clone(&ranges);
        server.set_rpc_handler(Arc::new(move |req: &[u8]| {
            let free_one = |addr: u64| -> bool {
                for r in handler_ranges.lock().iter() {
                    if addr >= r.base
                        && addr < r.base + r.stride * r.count
                        && (addr - r.base).is_multiple_of(r.stride)
                    {
                        return freelists.free(r.id, addr).is_ok();
                    }
                }
                false
            };
            if req.len() == 9 && req[0] == RPC_FREE {
                let addr = u64::from_le_bytes(req[1..9].try_into().expect("9-byte message"));
                if free_one(addr) {
                    return vec![0];
                }
            } else if req.len() >= 3 && req[0] == RPC_FREE_BATCH {
                // Batched reclamation (§3.2: "batching can be employed at
                // both client and server sides to minimize overhead").
                let n = u16::from_le_bytes(req[1..3].try_into().expect("2 bytes")) as usize;
                if req.len() == 3 + n * 8 {
                    let ok = (0..n).all(|i| {
                        let off = 3 + i * 8;
                        free_one(u64::from_le_bytes(
                            req[off..off + 8].try_into().expect("8 bytes"),
                        ))
                    });
                    return vec![if ok { 0 } else { 0xFF }];
                }
            }
            vec![0xFF]
        }));

        let refill = classes
            .iter()
            .map(|&(id, buf_len)| RefillState {
                id,
                stride: buf_len.next_multiple_of(64),
                low_water: 16,
                batch: 64,
            })
            .collect();
        let headroom_base = data_base + table_len + pools_len;

        // Durable tier: a private simulated disk holding the shard's
        // write-ahead segment log, fed by a chain observer at the
        // slot-install CAS.
        let disk = Arc::new(SimDisk::new());
        let store = Arc::new(SegmentStore::new(Arc::clone(&disk), "kv"));
        server.set_chain_observer(Arc::new(KvDurableTap {
            store: Arc::clone(&store),
            table_addr,
            capacity: config.capacity,
            max_entry_len: config.max_entry_len as u64,
        }));

        PrismKvServer {
            server,
            refill: prism_rdma::sync::Mutex::new(refill),
            headroom: prism_rdma::sync::Mutex::new((headroom_base, headroom_base + headroom_len)),
            ranges,
            pools: (data_base + table_len, pools_len),
            view: KvView {
                table_addr,
                data_rkey: data_rkey.0,
                capacity: config.capacity,
                scheme: config.scheme,
                max_entry_len: config.max_entry_len,
                classes,
            },
            disk,
            store,
            durable: Arc::new(DurableStats::new()),
        }
    }

    /// The underlying host (for direct execution in tests/live mode).
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// The client-visible layout.
    pub fn view(&self) -> &KvView {
        &self.view
    }

    /// The periodic control-plane check of §6.1: the server
    /// "periodically checks if more buffers are needed" and posts fresh
    /// ones when a size class runs low. New buffers are carved from the
    /// registered headroom (they must stay inside the data region to
    /// satisfy the indirect-GET same-rkey rule); once the headroom is
    /// exhausted the refill stops and ALLOCATE falls back to
    /// Receiver-Not-Ready flow control. Returns the number of buffers
    /// added.
    pub fn maybe_refill(&self) -> u64 {
        let mut added = 0;
        let refill = self.refill.lock();
        for r in refill.iter() {
            if self.server.freelists().available(r.id) >= r.low_water {
                continue;
            }
            let Some(base) = self.carve_headroom(r.stride * r.batch) else {
                continue;
            };
            self.server
                .freelists()
                .post(r.id, (0..r.batch).map(|j| base + j * r.stride))
                .expect("class registered");
            // Refilled buffers are pool members like any other: record
            // the extent so checked frees of them resolve.
            self.server
                .freelists()
                .register_extent(r.id, base, r.stride, r.batch);
            self.ranges.lock().push(PoolRange {
                id: r.id,
                base,
                stride: r.stride,
                count: r.batch,
            });
            added += r.batch;
        }
        added
    }

    fn carve_headroom(&self, len: u64) -> Option<u64> {
        let mut hr = self.headroom.lock();
        if hr.0 + len > hr.1 {
            return None;
        }
        let base = hr.0;
        hr.0 += len;
        Some(base)
    }

    /// `(base, len)` of the initial buffer pools — the memory where
    /// live entry bytes reside. The fault fabric's at-rest rot targets
    /// this range so injected damage lands on data a client can
    /// actually observe.
    pub fn value_pool_range(&self) -> (u64, u64) {
        self.pools
    }

    /// The simulated disk backing this shard's segment log (where the
    /// fault fabric's torn writes and at-rest rot land).
    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    /// The shard's durable segment log.
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// This shard's durable-recovery counters.
    pub fn durable_stats(&self) -> &Arc<DurableStats> {
        &self.durable
    }

    /// Shares an external durable-stats sink (e.g. the cluster's)
    /// instead of the shard's private one.
    pub fn set_durable_stats(&mut self, stats: Arc<DurableStats>) {
        self.durable = stats;
    }

    /// Fails the shard with **amnesia** and rejoins it: the host wipes
    /// and fences ([`PrismServer::amnesia_restart`]), the allocator is
    /// reset, and the segment log is replayed — last record wins per
    /// slot — to rebuild the table. KV shards are single-copy, so
    /// replay *is* the whole recovery: the log is write-ahead (every
    /// install barriers before the client sees its ack), which is what
    /// makes that sound. Replay validates every frame by CRC, truncates
    /// the first torn/corrupt tail, and drops any entry image whose own
    /// checksum fails — damage is detected, never served.
    ///
    /// Replay is **address-preserving**: each surviving record carries
    /// the slot word it installed, the entry is rewritten at its
    /// original buffer address, and those addresses are withheld from
    /// the allocator reset. The rebuilt heap is therefore bit-identical
    /// to the pre-crash durable state, so a client CAS machine that
    /// straddled the restart resumes against exactly the slot words it
    /// snapshotted — a relocated entry would change a slot word with no
    /// writer, which an in-doubt PUT's resolve read must otherwise
    /// misread as a racing writer displacing it (losing the acked
    /// update). Returns the shard's new incarnation.
    pub fn amnesia_restart(&self) -> u64 {
        let inc = self.server.amnesia_restart();

        // Replay the log, folding last-record-wins per slot: an empty
        // payload is a DELETE (the slot stays null — this is also what
        // keeps keys fenced by a `migrate_grow` from resurrecting), and
        // an install record is the slot word plus the entry image. The
        // entry carries its own checksum; a payload the segment CRC
        // passed but the entry check rejects (e.g. rot landed between
        // the two on a real disk) is dropped, not installed.
        let replay = self.store.replay();
        self.durable
            .add_segments_truncated(replay.segments_truncated);
        let mut last: std::collections::BTreeMap<u64, &[u8]> = std::collections::BTreeMap::new();
        for rec in &replay.records {
            if rec.key < self.view.capacity {
                last.insert(rec.key, &rec.payload);
            }
        }
        let mut live: Vec<(u64, u64, u64, &[u8])> = Vec::new();
        for (&slot, payload) in &last {
            if payload.len() <= SLOT as usize {
                continue; // deleted (empty) or malformed (short)
            }
            let ptr = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let bound = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            let image = &payload[SLOT as usize..];
            if ptr == 0 || entry::decode_verified(image).is_err() {
                continue;
            }
            live.push((slot, ptr, bound, image));
        }

        // Allocator reset, minus the replayed buffers: the initial class
        // pools go back on their free lists except addresses live
        // entries still occupy, refill extents are forgotten, and the
        // headroom rewinds — skipping past any live entry that had been
        // installed in carved-extent space, so a future refill cannot
        // carve over it. The pre-crash queue contents described
        // ownership that no longer exists.
        {
            let live_ptrs: std::collections::HashSet<u64> =
                live.iter().map(|&(_, p, _, _)| p).collect();
            let mut ranges = self.ranges.lock();
            ranges.truncate(self.view.classes.len());
            for r in ranges.iter() {
                self.server.freelists().reset(
                    r.id,
                    (0..r.count)
                        .map(|j| r.base + j * r.stride)
                        .filter(|a| !live_ptrs.contains(a)),
                );
            }
            let mut hr = self.headroom.lock();
            hr.0 = self.pools.0 + self.pools.1;
            for &(_, p, _, image) in &live {
                if p >= hr.0 {
                    let stride = self
                        .view
                        .class_for(image.len() as u64)
                        .and_then(|id| ranges.iter().find(|r| r.id == id).map(|r| r.stride))
                        .unwrap_or(image.len() as u64);
                    hr.0 = hr.0.max((p + stride).next_multiple_of(64));
                }
            }
        }

        let mut replayed = 0u64;
        let arena = self.server.arena();
        for (slot, ptr, bound, image) in live {
            if arena.write(ptr, image).is_err() {
                continue; // pointer outside the arena: damage, not data
            }
            let mut sw = Vec::with_capacity(SLOT as usize);
            sw.extend_from_slice(&ptr.to_le_bytes());
            sw.extend_from_slice(&bound.to_le_bytes());
            arena
                .write(self.view.slot_addr(slot), &sw)
                .expect("slot in arena");
            replayed += 1;
        }
        self.durable.add_replayed(replayed);
        // Recovery is control-plane: everything it rewrote is synced.
        self.store.barrier();
        inc
    }

    /// Walks every occupied slot and verifies its entry checksum
    /// server-side. Returns `(live, corrupt)` counts. The corruption
    /// gate runs this after a faulted run as the "no silent wrong
    /// answer" backstop: any corruption that was neither healed by an
    /// overwrite nor reaped by a delete is still *detectable* here —
    /// nothing damaged can masquerade as valid data.
    pub fn scrub(&self) -> (u64, u64) {
        let arena = self.server.arena();
        let (mut live, mut corrupt) = (0u64, 0u64);
        for i in 0..self.view.capacity {
            let slot = self.view.slot_addr(i);
            let Ok(ptr) = arena.read_u64(slot) else {
                continue;
            };
            if ptr == 0 {
                continue;
            }
            let bound = arena.read_u64(slot + 8).unwrap_or(0);
            let len = bound.min(self.view.max_entry_len as u64);
            live += 1;
            match arena.read(ptr, len) {
                Ok(bytes) if entry::decode_verified(&bytes).is_ok() => {}
                _ => corrupt += 1,
            }
        }
        (live, corrupt)
    }

    /// Server-side garbage collection (§3.2's alternative to
    /// client-driven reclamation): scans the slot array for reachable
    /// entry buffers and reposts every pool buffer that is neither
    /// reachable nor already free. Runs under the posting gate's
    /// exclusive side, so no chain is mid-allocation while it scans;
    /// install chains allocate and CAS within a single chain, so any
    /// unreachable buffer at that point is genuinely leaked — a lost
    /// CAS whose orphan notification died with its client, or a
    /// displaced entry whose free never arrived. Call it at a quiescent
    /// point (no reclaim RPCs still in flight) or an in-flight free may
    /// double-count; the checked free path rejects that free rather
    /// than corrupting the allocator. Returns the number of buffers
    /// reclaimed.
    pub fn gc_sweep(&self) -> usize {
        let _exclusive = self.server.freelists().gate_write();
        let arena = self.server.arena();
        let mut reachable = std::collections::HashSet::new();
        for i in 0..self.view.capacity {
            if let Ok(ptr) = arena.read_u64(self.view.slot_addr(i)) {
                reachable.insert(ptr);
            }
        }
        let mut reclaimed = 0;
        for &(id, _) in &self.view.classes {
            let free: std::collections::HashSet<u64> =
                self.server.freelists().snapshot(id).into_iter().collect();
            for r in self.ranges.lock().iter().filter(|r| r.id == id) {
                for j in 0..r.count {
                    let buf = r.base + j * r.stride;
                    if !reachable.contains(&buf) && !free.contains(&buf) {
                        // Safe under the exclusive gate (the repost
                        // path's own locking is bypassed deliberately:
                        // we *are* the holder).
                        self.server.freelists().repush_gc(id, buf);
                        reclaimed += 1;
                    }
                }
            }
        }
        reclaimed
    }

    /// Opens a client with its own connection scratch slot. Rkeys are
    /// stamped with the server's *current* incarnation (the handshake a
    /// real deployment performs at connection setup), so clients opened
    /// after an amnesia rejoin address the new fence, not the wiped one.
    pub fn open_client(&self) -> PrismKvClient {
        let conn = self.server.open_connection();
        let inc = self.server.regions().current_incarnation();
        let mut view = self.view.clone();
        view.data_rkey = Rkey(view.data_rkey).restamped(inc).0;
        PrismKvClient {
            view,
            scratch_addr: conn.scratch_addr,
            scratch_rkey: conn.scratch_rkey.restamped(inc).0,
            integrity: Arc::new(IntegrityStats::new()),
            next_version: Arc::new(AtomicU32::new(0)),
        }
    }
}

impl std::fmt::Debug for PrismKvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrismKvServer")
            .field("capacity", &self.view.capacity)
            .finish_non_exhaustive()
    }
}

/// A PRISM-KV client: builds the op state machines.
#[derive(Debug, Clone)]
pub struct PrismKvClient {
    view: KvView,
    scratch_addr: u64,
    scratch_rkey: u32,
    integrity: Arc<IntegrityStats>,
    next_version: Arc<AtomicU32>,
}

impl PrismKvClient {
    /// The store layout this client addresses.
    pub fn view(&self) -> &KvView {
        &self.view
    }

    /// Shares corruption counters with the harness: detections,
    /// repairs, and clean aborts observed by this client's ops are
    /// recorded in `stats`.
    pub fn with_integrity(mut self, stats: Arc<IntegrityStats>) -> Self {
        self.integrity = stats;
        self
    }

    /// This client's corruption counters.
    pub fn integrity(&self) -> &Arc<IntegrityStats> {
        &self.integrity
    }

    /// Adopts the shard's new incarnation after an amnesia rejoin: the
    /// client's cached rkeys are restamped in place
    /// ([`prism_rdma::region::Rkey::restamped`]). This is the
    /// control-plane re-handshake — no data moves; only the incarnation
    /// stamp differs. Called by the driver when a reply carries a
    /// stale-incarnation fence.
    pub fn refence(&mut self, inc: u64) {
        self.view.data_rkey = Rkey(self.view.data_rkey).restamped(inc).0;
        self.scratch_rkey = Rkey(self.scratch_rkey).restamped(inc).0;
    }

    /// Starts a GET; returns the machine and its first request.
    pub fn get(&self, key: &[u8]) -> (GetOp, Request) {
        let op = GetOp {
            key: key.to_vec(),
            attempt: 0,
            crc_retries: 0,
            verify_failed: false,
        };
        let req = op.probe_request(self);
        (op, req)
    }

    /// Starts a PUT.
    pub fn put(&self, key: &[u8], value: &[u8]) -> (PutOp, Request) {
        let op = PutOp {
            key: key.to_vec(),
            value: value.to_vec(),
            version: self
                .next_version
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_add(1),
            attempt: 0,
            retries: 0,
            state: PutState::Probe,
            delete: false,
            verify_failed: false,
            in_doubt: false,
        };
        let req = op.probe_request(self);
        (op, req)
    }

    /// Starts a DELETE (a PUT machine that installs null).
    pub fn delete(&self, key: &[u8]) -> (PutOp, Request) {
        let op = PutOp {
            key: key.to_vec(),
            value: Vec::new(),
            version: 0,
            attempt: 0,
            retries: 0,
            state: PutState::Probe,
            delete: true,
            verify_failed: false,
            in_doubt: false,
        };
        let req = op.probe_request(self);
        (op, req)
    }

    fn free_request(&self, addr: u64) -> Request {
        let mut msg = Vec::with_capacity(9);
        msg.push(RPC_FREE);
        msg.extend_from_slice(&addr.to_le_bytes());
        Request::Rpc(msg)
    }
}

/// GET state machine: one bounded indirect READ per probe (§6.1).
/// Entries are verified against their embedded checksum; a mismatch
/// triggers a bounded re-read ([`MAX_CRC_RETRIES`]) before the op
/// fails cleanly — the Pilaf detect-and-retry pattern, here only ever
/// exercised by injected corruption.
#[derive(Debug, Clone)]
pub struct GetOp {
    key: Vec<u8>,
    attempt: u64,
    crc_retries: u32,
    verify_failed: bool,
}

impl GetOp {
    fn probe_request(&self, c: &PrismKvClient) -> Request {
        let slot = c.view.scheme.slot(&self.key, self.attempt, c.view.capacity);
        Request::Chain(vec![ops::read_indirect_bounded(
            c.view.slot_addr(slot),
            c.view.max_entry_len,
            c.view.data_rkey,
        )])
    }

    /// Re-arms the op after a transport timeout or a corrupt reply.
    /// Probes are read-only, so the current one is simply re-sent.
    pub fn reissue(&self, c: &PrismKvClient) -> Request {
        self.probe_request(c)
    }

    /// Feeds the probe reply; returns the next step.
    pub fn on_reply(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep {
        let results = reply.into_chain();
        let r = &results[0];
        match &r.status {
            OpStatus::Ok => match entry::decode_verified(&r.data) {
                Ok((k, v, _)) if k == self.key => {
                    self.resolve(c, KvOutcome::Value(Some(v.to_vec())))
                }
                Ok(_) => self.next_probe(c),
                // Checksum mismatch or a header too damaged to frame
                // the read: detected corruption. Re-read a bounded
                // number of times (a racing overwrite heals it; the
                // winner's entry has a valid checksum), then give up
                // with a typed failure.
                Err(_) => {
                    c.integrity.note_detected();
                    self.verify_failed = true;
                    self.crc_retries += 1;
                    if self.crc_retries > MAX_CRC_RETRIES {
                        c.integrity.note_aborted();
                        KvStep::done(KvOutcome::Failed("persistent entry CRC mismatch"))
                    } else {
                        KvStep::send(self.probe_request(c))
                    }
                }
            },
            // Null pointer: the slot is empty. Under linear probing an
            // empty slot terminates the probe sequence.
            OpStatus::Error(RdmaError::BadIndirectTarget(0)) => {
                self.resolve(c, KvOutcome::Value(None))
            }
            _ => {
                if self.verify_failed {
                    c.integrity.note_aborted();
                }
                KvStep::done(KvOutcome::Failed("GET probe error"))
            }
        }
    }

    /// A clean completion; if this op had detected corruption along
    /// the way, the damage resolved (healed copy, or the entry was
    /// overwritten/deleted out from under it) — count the repair.
    fn resolve(&mut self, c: &PrismKvClient, outcome: KvOutcome) -> KvStep {
        if self.verify_failed {
            c.integrity.note_repaired();
            self.verify_failed = false;
        }
        KvStep::done(outcome)
    }

    fn next_probe(&mut self, c: &PrismKvClient) -> KvStep {
        self.attempt += 1;
        let limit = match c.view.scheme {
            HashScheme::Collisionless => 1,
            HashScheme::Fnv => MAX_PROBES.min(c.view.capacity),
        };
        if self.attempt >= limit {
            self.resolve(c, KvOutcome::Value(None))
        } else {
            KvStep::send(self.probe_request(c))
        }
    }
}

#[derive(Debug, Clone)]
enum PutState {
    Probe,
    Install {
        slot: u64,
        old: [u8; 16],
    },
    /// A transport reissue found an install chain in flight with an
    /// unknown outcome: re-read the slot to learn whether the lost
    /// install published before deciding anything.
    Resolve {
        slot: u64,
        old: [u8; 16],
    },
}

/// PUT/DELETE state machine: probe round trip, then the install chain
/// (§6.1). Retries the whole sequence on CAS races.
///
/// Transport reissue is at-most-once: [`PutOp::reissue`] never blindly
/// re-runs a possibly-executed install. A lost install reply leaves the
/// publish in doubt, and re-applying it after a racing writer landed
/// would resurrect a stale value over the newer one — a linearizability
/// violation readers can observe. The resolve read disambiguates first.
#[derive(Debug, Clone)]
pub struct PutOp {
    key: Vec<u8>,
    value: Vec<u8>,
    version: u32,
    attempt: u64,
    retries: u32,
    state: PutState,
    delete: bool,
    verify_failed: bool,
    /// An install chain was sent whose reply never arrived: its CAS may
    /// have executed. Once set, every CAS failure routes back through
    /// the resolve read — the lost chain could still land at any time.
    in_doubt: bool,
}

impl PutOp {
    fn probe_request(&self, c: &PrismKvClient) -> Request {
        let slot = c.view.scheme.slot(&self.key, self.attempt, c.view.capacity);
        let slot_addr = c.view.slot_addr(slot);
        // Op 1 captures the raw (ptr, bound) word for the CAS compare;
        // op 2 fetches the entry header + key to verify slot ownership.
        Request::Chain(vec![
            ops::read(slot_addr, SLOT as u32, c.view.data_rkey),
            ops::read_indirect_bounded(
                slot_addr,
                (entry::HEADER + self.key.len()) as u32,
                c.view.data_rkey,
            ),
        ])
    }

    fn install_request(&self, c: &PrismKvClient, slot: u64, old: [u8; 16]) -> Option<Request> {
        let slot_addr = c.view.slot_addr(slot);
        if self.delete {
            return Some(Request::Chain(vec![ops::cas_args(
                CasMode::Eq,
                slot_addr,
                c.view.data_rkey,
                DataArg::Inline(old.to_vec()),
                DataArg::Inline(vec![0u8; 16]),
                16,
                full_mask(16),
                full_mask(16),
            )]));
        }
        let e = entry::encode_versioned(&self.key, &self.value, self.version);
        let bound = e.len() as u64;
        let class = c.view.class_for(bound)?;
        let scratch = Redirect {
            addr: c.scratch_addr,
            rkey: c.scratch_rkey,
        };
        Some(Request::Chain(vec![
            // Stage the bound at scratch+8 (the slot's second word).
            ops::write(
                c.scratch_addr + 8,
                bound.to_le_bytes().to_vec(),
                c.scratch_rkey,
            ),
            // Allocate the entry; its address lands at scratch+0.
            ops::allocate(class, e).redirect(scratch),
            // Install (new_ptr, bound) if the slot is unchanged.
            ops::cas_args(
                CasMode::Eq,
                slot_addr,
                c.view.data_rkey,
                DataArg::Inline(old.to_vec()),
                DataArg::Remote {
                    addr: c.scratch_addr,
                    rkey: c.scratch_rkey,
                },
                16,
                full_mask(16),
                full_mask(16),
            )
            .conditional(),
            // Recover the new pointer so a losing client can reclaim it.
            ops::read(c.scratch_addr, 8, c.scratch_rkey),
        ]))
    }

    /// Feeds a reply; returns the next step.
    pub fn on_reply(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep {
        let step = self.advance(c, reply);
        // Integrity accounting at op completion: if this op saw
        // corruption in its probe, a successful install *is* the
        // overwrite that repaired it; a clean failure is a corrupt
        // abort. Either way, never a silent wrong answer.
        if self.verify_failed {
            if let KvStep::Done { outcome, .. } = &step {
                match outcome {
                    KvOutcome::Failed(_) => c.integrity.note_aborted(),
                    _ => c.integrity.note_repaired(),
                }
                self.verify_failed = false;
            }
        }
        step
    }

    fn advance(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep {
        let results = reply.into_chain();
        match self.state.clone() {
            PutState::Probe => {
                let slot_word = match results[0].expect_data() {
                    Ok(d) if d.len() == 16 => {
                        let mut w = [0u8; 16];
                        w.copy_from_slice(d);
                        w
                    }
                    _ => return KvStep::done(KvOutcome::Failed("PUT probe error")),
                };
                let ptr = u64::from_le_bytes(slot_word[0..8].try_into().expect("8 bytes"));
                let slot = c.view.scheme.slot(&self.key, self.attempt, c.view.capacity);
                if ptr == 0 {
                    // Empty slot: claim it (compare against the observed
                    // empty word).
                    return self.enter_install(c, slot, slot_word);
                }
                // Occupied: does it hold our key?
                match &results[1].status {
                    OpStatus::Ok => match entry::decode_key(&results[1].data) {
                        Some(k) if k == self.key => self.enter_install(c, slot, slot_word),
                        // In collisionless mode slot ownership is
                        // deterministic, so a key mismatch (or an
                        // unparsable header) is damage, not another
                        // key's entry — and the install about to CAS
                        // over the slot is exactly the overwrite that
                        // heals it.
                        _ if matches!(c.view.scheme, HashScheme::Collisionless) => {
                            c.integrity.note_detected();
                            self.verify_failed = true;
                            self.enter_install(c, slot, slot_word)
                        }
                        _ => self.next_probe(c),
                    },
                    // Pointer was non-null at op 1 but null/invalid at
                    // op 2: a concurrent delete. Retry the probe.
                    _ => self.retry_probe(c),
                }
            }
            PutState::Install { slot, old } => {
                if self.delete {
                    let cas = &results[0];
                    return match &cas.status {
                        OpStatus::Ok => {
                            let old_ptr =
                                u64::from_le_bytes(old[0..8].try_into().expect("8 bytes"));
                            KvStep::Done {
                                outcome: KvOutcome::Written,
                                background: (old_ptr != 0).then(|| c.free_request(old_ptr)),
                            }
                        }
                        OpStatus::CasFailed => self.after_cas_failed(c, slot, old),
                        _ => KvStep::done(KvOutcome::Failed("DELETE CAS error")),
                    };
                }
                // [write, allocate, cas, read-back]
                if let OpStatus::Error(e) = &results[1].status {
                    let _ = e;
                    return KvStep::done(KvOutcome::Failed("allocation failed"));
                }
                let new_ptr = match results[3].expect_data() {
                    Ok(d) if d.len() == 8 => u64::from_le_bytes(d.try_into().expect("8 bytes")),
                    _ => return KvStep::done(KvOutcome::Failed("scratch read error")),
                };
                match &results[2].status {
                    OpStatus::Ok => {
                        let old_ptr = u64::from_le_bytes(old[0..8].try_into().expect("8 bytes"));
                        KvStep::Done {
                            outcome: KvOutcome::Written,
                            background: (old_ptr != 0).then(|| c.free_request(old_ptr)),
                        }
                    }
                    OpStatus::CasFailed => {
                        // Lost the race: reclaim our orphaned buffer,
                        // then resume from the probe (or, with a lost
                        // install still in doubt, from the resolve read).
                        let step = self.after_cas_failed(c, slot, old);
                        attach_background(step, c.free_request(new_ptr))
                    }
                    _ => KvStep::done(KvOutcome::Failed("install CAS error")),
                }
            }
            PutState::Resolve { slot, old } => self.resolve(c, slot, old, &results),
        }
    }

    /// Decides what a reissued PUT does once the resolve read returns.
    ///
    /// Three cases, each applying the op's effect at most once:
    /// - the slot still holds the compare word: nothing (including our
    ///   lost install) published, so the same-compare install chain is
    ///   re-sent — a straggling duplicate of the lost chain can only
    ///   fail its CAS against the word the re-send swaps in;
    /// - the slot holds exactly the entry we encoded (key, value, and
    ///   version are all inside the byte comparison): the lost install
    ///   published and only the ack was lost, so the op completes and
    ///   frees the entry it displaced;
    /// - the slot holds anything else: either our install never ran, or
    ///   it ran and a later writer already displaced it. Both linearize
    ///   the op at (or immediately before) that writer, so it completes
    ///   without applying anything — re-installing here is exactly the
    ///   stale-value resurrection this state exists to prevent.
    fn resolve(
        &mut self,
        c: &PrismKvClient,
        slot: u64,
        old: [u8; 16],
        results: &[OpResult],
    ) -> KvStep {
        let word = match results[0].expect_data() {
            Ok(d) if d.len() == 16 => {
                let mut w = [0u8; 16];
                w.copy_from_slice(d);
                w
            }
            _ => return KvStep::done(KvOutcome::Failed("resolve read error")),
        };
        if word == old {
            return match self.install_request(c, slot, old) {
                Some(req) => {
                    self.state = PutState::Install { slot, old };
                    KvStep::send(req)
                }
                None => KvStep::done(KvOutcome::Failed("entry exceeds all size classes")),
            };
        }
        if self.delete {
            // Ours-or-equivalent if now null, overwritten otherwise;
            // either way the delete is complete. The displaced entry is
            // leaked rather than freed: whether we own it is unknowable.
            return KvStep::done(KvOutcome::Written);
        }
        let ours = entry::encode_versioned(&self.key, &self.value, self.version);
        let landed = matches!(results[1].expect_data(), Ok(d) if d == &ours[..]);
        if landed {
            let old_ptr = u64::from_le_bytes(old[0..8].try_into().expect("8 bytes"));
            return KvStep::Done {
                outcome: KvOutcome::Written,
                background: (old_ptr != 0).then(|| c.free_request(old_ptr)),
            };
        }
        KvStep::done(KvOutcome::Written)
    }

    /// A definitive CAS failure: with no lost install in doubt the op
    /// restarts from the probe; with one in doubt it must re-read the
    /// slot first — the lost chain may have published in the meantime.
    fn after_cas_failed(&mut self, c: &PrismKvClient, slot: u64, old: [u8; 16]) -> KvStep {
        if self.in_doubt {
            self.state = PutState::Resolve { slot, old };
            return KvStep::send(self.resolve_request(c, slot));
        }
        self.retry_probe(c)
    }

    /// Re-arms the op after a transport timeout or a corrupt reply.
    ///
    /// Probe legs are read-only and simply re-sent. An unanswered
    /// install (or resolve re-install) flags the op in-doubt and routes
    /// through [`PutState::Resolve`] instead of re-running the chain.
    pub fn reissue(&mut self, c: &PrismKvClient) -> Request {
        match self.state.clone() {
            PutState::Probe => self.probe_request(c),
            PutState::Install { slot, old } | PutState::Resolve { slot, old } => {
                self.in_doubt = true;
                self.state = PutState::Resolve { slot, old };
                self.resolve_request(c, slot)
            }
        }
    }

    /// The resolve read: the raw slot word (for the compare check) plus
    /// the entry it points at (for the did-ours-land check).
    fn resolve_request(&self, c: &PrismKvClient, slot: u64) -> Request {
        let slot_addr = c.view.slot_addr(slot);
        Request::Chain(vec![
            ops::read(slot_addr, SLOT as u32, c.view.data_rkey),
            ops::read_indirect_bounded(slot_addr, c.view.max_entry_len, c.view.data_rkey),
        ])
    }

    fn enter_install(&mut self, c: &PrismKvClient, slot: u64, old: [u8; 16]) -> KvStep {
        match self.install_request(c, slot, old) {
            Some(req) => {
                self.state = PutState::Install { slot, old };
                KvStep::send(req)
            }
            None => KvStep::done(KvOutcome::Failed("entry exceeds all size classes")),
        }
    }

    fn next_probe(&mut self, c: &PrismKvClient) -> KvStep {
        self.attempt += 1;
        let limit = match c.view.scheme {
            HashScheme::Collisionless => 1,
            HashScheme::Fnv => MAX_PROBES.min(c.view.capacity),
        };
        if self.attempt >= limit {
            return KvStep::done(KvOutcome::Failed("hash table full along probe path"));
        }
        self.state = PutState::Probe;
        KvStep::send(self.probe_request(c))
    }

    fn retry_probe(&mut self, c: &PrismKvClient) -> KvStep {
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            return KvStep::done(KvOutcome::Failed("retry budget exhausted"));
        }
        self.attempt = 0;
        self.state = PutState::Probe;
        KvStep::send(self.probe_request(c))
    }
}

fn attach_background(step: KvStep, extra: Request) -> KvStep {
    match step {
        KvStep::Send {
            request,
            background: None,
        } => KvStep::Send {
            request,
            background: Some(extra),
        },
        KvStep::Done {
            outcome,
            background: None,
        } => KvStep::Done {
            outcome,
            background: Some(extra),
        },
        other => other, // never stacks two backgrounds in practice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::msg::execute_local;

    /// Drives a machine to completion against a local server, sending
    /// background requests fire-and-forget. Returns the outcome and the
    /// number of round trips.
    pub(crate) fn drive_get(
        server: &PrismKvServer,
        c: &PrismKvClient,
        key: &[u8],
    ) -> (KvOutcome, u32) {
        let (mut op, req) = c.get(key);
        let mut rtts = 1;
        let mut reply = execute_local(server.server(), &req);
        loop {
            match op.on_reply(c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    send_bg(server, background);
                    rtts += 1;
                    reply = execute_local(server.server(), &request);
                }
                KvStep::Done {
                    outcome,
                    background,
                } => {
                    send_bg(server, background);
                    return (outcome, rtts);
                }
            }
        }
    }

    pub(crate) fn drive_put(
        server: &PrismKvServer,
        c: &PrismKvClient,
        key: &[u8],
        value: &[u8],
    ) -> (KvOutcome, u32) {
        let (mut op, req) = c.put(key, value);
        let mut rtts = 1;
        let mut reply = execute_local(server.server(), &req);
        loop {
            match op.on_reply(c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    send_bg(server, background);
                    rtts += 1;
                    reply = execute_local(server.server(), &request);
                }
                KvStep::Done {
                    outcome,
                    background,
                } => {
                    send_bg(server, background);
                    return (outcome, rtts);
                }
            }
        }
    }

    fn send_bg(server: &PrismKvServer, bg: Option<Request>) {
        if let Some(req) = bg {
            let _ = execute_local(server.server(), &req);
        }
    }

    fn small_store() -> (PrismKvServer, PrismKvClient) {
        let cfg = PrismKvConfig {
            capacity: 64,
            scheme: HashScheme::Fnv,
            max_entry_len: 256,
            classes: vec![
                SizeClass {
                    buf_len: 64,
                    count: 32,
                },
                SizeClass {
                    buf_len: 256,
                    count: 32,
                },
            ],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        (s, c)
    }

    /// Probes a PUT machine against the live store and returns the
    /// install chain it wants to send next.
    fn probe_to_install(
        s: &PrismKvServer,
        c: &PrismKvClient,
        op: &mut PutOp,
        req: Request,
    ) -> Request {
        let reply = execute_local(s.server(), &req);
        match op.on_reply(c, reply) {
            KvStep::Send { request, .. } => request,
            step => panic!("expected the install send, got {step:?}"),
        }
    }

    /// A transport-reissued PUT whose install chain executed — only the
    /// ack was lost — must not re-apply itself over a racing write that
    /// landed in between. The resolve read sees a foreign entry and
    /// completes without re-installing; blindly re-running the chain
    /// would resurrect the stale value, a linearizability violation
    /// readers can observe.
    #[test]
    fn reissued_put_does_not_resurrect_over_a_newer_write() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"k", b"v0");

        let (mut op, req) = c.put(b"k", b"va");
        let install = probe_to_install(&s, &c, &mut op, req);
        // The install executes at the server; its reply is "lost".
        let _lost_ack = execute_local(s.server(), &install);

        // A racing writer overwrites in the ack gap.
        drive_put(&s, &c, b"k", b"vb");

        let reply = execute_local(s.server(), &op.reissue(&c));
        match op.on_reply(&c, reply) {
            KvStep::Done { outcome, .. } => assert_eq!(outcome, KvOutcome::Written),
            step => panic!("expected completion, got {step:?}"),
        }
        let (o, _) = drive_get(&s, &c, b"k");
        assert_eq!(o, KvOutcome::Value(Some(b"vb".to_vec())));
    }

    /// Lost ack with no racing writer: the resolve read finds the slot
    /// holding exactly the entry this op encoded (version included), so
    /// the install provably published — the op completes and the entry
    /// it displaced is its to free.
    #[test]
    fn reissued_put_detects_its_own_published_install() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"k", b"v0");

        let (mut op, req) = c.put(b"k", b"va");
        let install = probe_to_install(&s, &c, &mut op, req);
        let _lost_ack = execute_local(s.server(), &install);

        let reply = execute_local(s.server(), &op.reissue(&c));
        match op.on_reply(&c, reply) {
            KvStep::Done {
                outcome,
                background,
            } => {
                assert_eq!(outcome, KvOutcome::Written);
                assert!(
                    background.is_some(),
                    "the displaced v0 buffer is this op's to free"
                );
                send_bg(&s, background);
            }
            step => panic!("expected completion, got {step:?}"),
        }
        let (o, _) = drive_get(&s, &c, b"k");
        assert_eq!(o, KvOutcome::Value(Some(b"va".to_vec())));
    }

    /// The install chain never reached the server (request dropped):
    /// the resolve read finds the slot still holding the compare word,
    /// so nothing published and the same-compare install is re-sent —
    /// the op still applies, exactly once.
    #[test]
    fn reissued_put_reinstalls_when_the_lost_chain_never_ran() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"k", b"v0");

        let (mut op, req) = c.put(b"k", b"va");
        let _dropped_install = probe_to_install(&s, &c, &mut op, req);

        let reply = execute_local(s.server(), &op.reissue(&c));
        let install = match op.on_reply(&c, reply) {
            KvStep::Send { request, .. } => request,
            step => panic!("expected the re-sent install, got {step:?}"),
        };
        let reply = execute_local(s.server(), &install);
        match op.on_reply(&c, reply) {
            KvStep::Done {
                outcome,
                background,
            } => {
                assert_eq!(outcome, KvOutcome::Written);
                send_bg(&s, background);
            }
            step => panic!("expected completion, got {step:?}"),
        }
        let (o, _) = drive_get(&s, &c, b"k");
        assert_eq!(o, KvOutcome::Value(Some(b"va".to_vec())));
    }

    #[test]
    fn get_missing_key_is_none() {
        let (s, c) = small_store();
        let (outcome, rtts) = drive_get(&s, &c, b"absent");
        assert_eq!(outcome, KvOutcome::Value(None));
        assert_eq!(rtts, 1, "a missing key costs one round trip");
    }

    #[test]
    fn put_then_get_round_trips() {
        let (s, c) = small_store();
        let (o, rtts) = drive_put(&s, &c, b"alpha", b"value-one");
        assert_eq!(o, KvOutcome::Written);
        assert_eq!(rtts, 2, "PUT = probe + install (§6.1)");
        let (o, rtts) = drive_get(&s, &c, b"alpha");
        assert_eq!(o, KvOutcome::Value(Some(b"value-one".to_vec())));
        assert_eq!(rtts, 1, "GET = one indirect READ (§6.1)");
    }

    #[test]
    fn overwrite_replaces_value_and_frees_old_buffer() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"k", b"v1");
        let avail_before = s.server().freelists().available(FreeListId(0));
        drive_put(&s, &c, b"k", b"v2");
        let (o, _) = drive_get(&s, &c, b"k");
        assert_eq!(o, KvOutcome::Value(Some(b"v2".to_vec())));
        // Old buffer reclaimed: available count unchanged (pop one, free one).
        assert_eq!(
            s.server().freelists().available(FreeListId(0)),
            avail_before
        );
    }

    #[test]
    fn values_pick_smallest_fitting_class() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"small", b"x");
        assert_eq!(s.server().freelists().available(FreeListId(0)), 31);
        assert_eq!(s.server().freelists().available(FreeListId(1)), 32);
        drive_put(&s, &c, b"large", &[7u8; 200]);
        assert_eq!(s.server().freelists().available(FreeListId(1)), 31);
    }

    #[test]
    fn oversized_value_fails_cleanly() {
        let (s, c) = small_store();
        let (o, _) = drive_put(&s, &c, b"big", &[0u8; 1000]);
        assert_eq!(o, KvOutcome::Failed("entry exceeds all size classes"));
    }

    #[test]
    fn delete_removes_key_and_frees_buffer() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"gone", b"soon");
        let before = s.server().freelists().available(FreeListId(0));
        let (mut op, req) = c.delete(b"gone");
        let mut reply = execute_local(s.server(), &req);
        let mut bg_sent = 0;
        loop {
            match op.on_reply(&c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    if let Some(b) = background {
                        execute_local(s.server(), &b);
                        bg_sent += 1;
                    }
                    reply = execute_local(s.server(), &request);
                }
                KvStep::Done {
                    outcome,
                    background,
                } => {
                    if let Some(b) = background {
                        execute_local(s.server(), &b);
                        bg_sent += 1;
                    }
                    assert_eq!(outcome, KvOutcome::Written);
                    break;
                }
            }
        }
        assert_eq!(bg_sent, 1, "delete frees the old buffer");
        assert_eq!(s.server().freelists().available(FreeListId(0)), before + 1);
        let (o, _) = drive_get(&s, &c, b"gone");
        assert_eq!(o, KvOutcome::Value(None));
    }

    #[test]
    fn colliding_keys_coexist_via_probing() {
        // Force collisions by filling a tiny table.
        let cfg = PrismKvConfig {
            capacity: 4,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 16,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        for i in 0..4u8 {
            let (o, _) = drive_put(&s, &c, &[b'k', i], &[b'v', i]);
            assert_eq!(o, KvOutcome::Written, "key {i}");
        }
        for i in 0..4u8 {
            let (o, _) = drive_get(&s, &c, &[b'k', i]);
            assert_eq!(o, KvOutcome::Value(Some(vec![b'v', i])), "key {i}");
        }
    }

    #[test]
    fn table_full_put_fails() {
        let cfg = PrismKvConfig {
            capacity: 2,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 16,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        assert_eq!(drive_put(&s, &c, b"a", b"1").0, KvOutcome::Written);
        assert_eq!(drive_put(&s, &c, b"b", b"2").0, KvOutcome::Written);
        let (o, _) = drive_put(&s, &c, b"c", b"3");
        assert!(matches!(o, KvOutcome::Failed(_)));
    }

    #[test]
    fn collisionless_paper_config() {
        let cfg = PrismKvConfig::paper(128, 32);
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        use crate::hash::key_bytes;
        for k in 0..128u64 {
            let (o, rtts) = drive_put(&s, &c, &key_bytes(k), &[k as u8; 32]);
            assert_eq!(o, KvOutcome::Written);
            assert_eq!(rtts, 2);
        }
        for k in 0..128u64 {
            let (o, rtts) = drive_get(&s, &c, &key_bytes(k));
            assert_eq!(o, KvOutcome::Value(Some(vec![k as u8; 32])));
            assert_eq!(rtts, 1);
        }
    }

    #[test]
    fn exhausted_freelist_fails_put() {
        let cfg = PrismKvConfig {
            capacity: 16,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 2,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        assert_eq!(drive_put(&s, &c, b"a", b"1").0, KvOutcome::Written);
        assert_eq!(drive_put(&s, &c, b"b", b"2").0, KvOutcome::Written);
        let (o, _) = drive_put(&s, &c, b"c", b"3");
        assert_eq!(o, KvOutcome::Failed("allocation failed"));
    }

    #[test]
    fn refill_daemon_extends_a_drained_class() {
        let cfg = PrismKvConfig {
            capacity: 64,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 8,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        // Fill all 8 buffers; the 9th PUT fails without a refill.
        for i in 0..8u8 {
            assert_eq!(drive_put(&s, &c, &[b'k', i], &[i; 8]).0, KvOutcome::Written);
        }
        assert_eq!(
            drive_put(&s, &c, b"k9", b"x").0,
            KvOutcome::Failed("allocation failed")
        );
        // The §6.1 periodic check kicks in.
        let added = s.maybe_refill();
        assert!(added > 0, "refill must post new buffers");
        assert_eq!(drive_put(&s, &c, b"k9", b"x").0, KvOutcome::Written);
        // Refilled buffers satisfy the same-rkey rule: GET works.
        assert_eq!(
            drive_get(&s, &c, b"k9").0,
            KvOutcome::Value(Some(b"x".to_vec()))
        );
        // When availability is healthy, the check is a no-op.
        assert_eq!(s.maybe_refill(), 0);
    }

    #[test]
    fn rotted_value_aborts_get_cleanly_and_overwrite_heals() {
        let cfg = PrismKvConfig::paper(8, 32);
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        let key = crate::hash::key_bytes(2);
        assert_eq!(drive_put(&s, &c, &key, &[7u8; 32]).0, KvOutcome::Written);
        // Rot one value bit behind the store's back.
        let slot = c
            .view()
            .slot_addr(c.view().scheme.slot(&key, 0, c.view().capacity));
        let ptr = s.server().arena().read_u64(slot).unwrap();
        s.server()
            .arena()
            .flip_bit(ptr + entry::HEADER as u64 + key.len() as u64 + 4, 3)
            .unwrap();
        // The GET detects the mismatch every re-read and fails cleanly
        // — it never returns the rotted bytes.
        let (o, rtts) = drive_get(&s, &c, &key);
        assert_eq!(o, KvOutcome::Failed("persistent entry CRC mismatch"));
        assert_eq!(rtts, 1 + MAX_CRC_RETRIES, "bounded re-read budget");
        assert_eq!(c.integrity().detected(), (MAX_CRC_RETRIES + 1) as u64);
        assert_eq!(c.integrity().aborted(), 1);
        let (_, corrupt) = s.scrub();
        assert_eq!(corrupt, 1, "scrub still sees the damage");
        // An overwrite installs a fresh checksummed entry: healed.
        assert_eq!(drive_put(&s, &c, &key, &[9u8; 32]).0, KvOutcome::Written);
        assert_eq!(s.scrub().1, 0, "overwrite heals the pool");
        assert_eq!(
            drive_get(&s, &c, &key).0,
            KvOutcome::Value(Some(vec![9u8; 32]))
        );
    }

    #[test]
    fn rotted_key_is_detected_by_put_probe_and_overwritten() {
        let cfg = PrismKvConfig::paper(8, 32);
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        let key = crate::hash::key_bytes(5);
        assert_eq!(drive_put(&s, &c, &key, &[1u8; 32]).0, KvOutcome::Written);
        let slot = c
            .view()
            .slot_addr(c.view().scheme.slot(&key, 0, c.view().capacity));
        let ptr = s.server().arena().read_u64(slot).unwrap();
        // Flip a key bit: the PUT probe's ownership check now
        // mismatches, which in collisionless mode is damage by
        // definition — the PUT detects it and installs over it.
        s.server()
            .arena()
            .flip_bit(ptr + entry::HEADER as u64, 0)
            .unwrap();
        assert_eq!(drive_put(&s, &c, &key, &[2u8; 32]).0, KvOutcome::Written);
        assert_eq!(c.integrity().detected(), 1);
        assert_eq!(c.integrity().repaired(), 1);
        assert_eq!(s.scrub().1, 0);
        assert_eq!(
            drive_get(&s, &c, &key).0,
            KvOutcome::Value(Some(vec![2u8; 32]))
        );
    }

    #[test]
    fn concurrent_puts_same_key_converge() {
        use std::thread;
        let cfg = PrismKvConfig::paper(16, 32);
        let s = Arc::new(PrismKvServer::new(&cfg));
        let key = crate::hash::key_bytes(3);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let c = s.open_client();
                    for j in 0..50u8 {
                        let val: Vec<u8> = [i as u8, j].repeat(16);
                        let (o, _) = drive_put(&s, &c, &crate::hash::key_bytes(3), &val);
                        assert_eq!(o, KvOutcome::Written);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = s.open_client();
        let (o, _) = drive_get(&s, &c, &key);
        match o {
            KvOutcome::Value(Some(v)) => assert_eq!(v.len(), 32),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    /// Amnesia restart replays the write-ahead segment log: every
    /// acknowledged PUT survives, overwrites replay to their final
    /// value, and DELETEs stay deleted — with zero network resync,
    /// because a KV shard's log is its only copy.
    #[test]
    fn amnesia_restart_replays_the_segment_log() {
        let cfg = PrismKvConfig::paper(16, 32);
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        for k in 0..8u64 {
            let key = crate::hash::key_bytes(k);
            assert_eq!(
                drive_put(&s, &c, &key, &[k as u8; 32]).0,
                KvOutcome::Written
            );
        }
        // Overwrite one, delete another: replay must fold to the final
        // state, not any intermediate.
        let key2 = crate::hash::key_bytes(2);
        assert_eq!(drive_put(&s, &c, &key2, &[0xAA; 32]).0, KvOutcome::Written);
        let key5 = crate::hash::key_bytes(5);
        let (mut op, req) = c.delete(&key5);
        let mut reply = execute_local(s.server(), &req);
        loop {
            match op.on_reply(&c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    send_bg(&s, background);
                    reply = execute_local(s.server(), &request);
                }
                KvStep::Done { background, .. } => {
                    send_bg(&s, background);
                    break;
                }
            }
        }

        let inc = s.amnesia_restart();
        assert_eq!(inc, 1);
        assert!(s.durable_stats().replayed() > 0, "replay rebuilt the table");

        // A pre-crash client is fenced (stale incarnation), then works
        // after the control-plane refence.
        let (_stale, req) = c.get(&crate::hash::key_bytes(0));
        let reply = execute_local(s.server(), &req);
        assert_eq!(reply.stale_incarnation(), Some(inc));
        let mut c = c.clone();
        c.refence(inc);

        for k in 0..8u64 {
            let key = crate::hash::key_bytes(k);
            let want = match k {
                2 => KvOutcome::Value(Some(vec![0xAA; 32])),
                5 => KvOutcome::Value(None),
                _ => KvOutcome::Value(Some(vec![k as u8; 32])),
            };
            assert_eq!(drive_get(&s, &c, &key).0, want, "key {k} after replay");
        }
        assert_eq!(s.scrub().1, 0, "nothing replayed is corrupt");
    }

    /// At-rest rot on the segment log is detected by CRC at replay:
    /// damaged records are dropped (the key reads absent or older), and
    /// nothing corrupt is ever installed where a GET could see it.
    #[test]
    fn amnesia_restart_survives_rotted_segments_without_serving_damage() {
        use prism_simnet::rng::SimRng;
        let cfg = PrismKvConfig::paper(16, 32);
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        for k in 0..8u64 {
            let key = crate::hash::key_bytes(k);
            assert_eq!(
                drive_put(&s, &c, &key, &[k as u8; 32]).0,
                KvOutcome::Written
            );
        }
        let mut rng = SimRng::new(7);
        assert!(s.disk().rot(&mut rng, 24) > 0, "rot landed on the log");

        let inc = s.amnesia_restart();
        let mut c = c.clone();
        c.refence(inc);
        for k in 0..8u64 {
            let key = crate::hash::key_bytes(k);
            match drive_get(&s, &c, &key).0 {
                // Either the record survived (bits missed its frame) or
                // it was dropped at a CRC check and the key is absent —
                // never a third, silently-wrong outcome.
                KvOutcome::Value(Some(v)) => assert_eq!(v, vec![k as u8; 32]),
                KvOutcome::Value(None) => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(s.scrub().1, 0, "nothing corrupt was installed");
    }
}
