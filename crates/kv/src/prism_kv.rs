//! PRISM-KV: the paper's one-sided key-value store (§6.1).
//!
//! Layout: a hash table of 16-byte `(ptr, bound)` slots in one registered
//! data region that also contains the ALLOCATE buffer pools, so indirect
//! operations satisfy the same-rkey rule (§3.1). Entries are
//! `[klen | vlen | key | value]` ([`crate::entry`]) in write-once
//! buffers.
//!
//! * **GET** — one bounded indirect READ of the slot (§6.1): the engine
//!   follows the pointer and returns at most `bound` bytes. The client
//!   verifies the key and linearly probes on a mismatch. An empty slot
//!   NACKs (null pointer), which the client interprets as absence.
//! * **PUT** — one probe round trip (slot word + entry key, chained),
//!   then one install round trip: WRITE the bound into connection
//!   scratch, ALLOCATE the new entry with its address redirected into
//!   scratch, then a conditional 16-byte CAS that installs
//!   `(new_ptr, bound)` if the slot still holds what the probe saw. A
//!   final unconditional READ of scratch returns the new pointer so the
//!   client can reclaim the buffer if the CAS lost a race.
//! * **DELETE** — probe, then CAS the slot to null (footnote 2 of the
//!   paper discusses slot reuse; we use the same heavy-handed
//!   compare-the-pointer approach).
//!
//! Reclamation is client-driven (§3.2): the winner frees the replaced
//! buffer, a loser frees its own orphan, via a fire-and-forget RPC the
//! server CPU turns into a gated repost.

use std::sync::Arc;

use prism_core::builder::ops;
use prism_core::msg::{Reply, Request};
use prism_core::op::{full_mask, DataArg, FreeListId, Redirect};
use prism_core::value::CasMode;
use prism_core::{OpStatus, PrismServer};
use prism_rdma::region::AccessFlags;
use prism_rdma::RdmaError;

use crate::entry;
use crate::hash::HashScheme;
use crate::{KvOutcome, KvStep};

/// Slot size: `(ptr u64 LE, bound u64 LE)`.
pub const SLOT: u64 = 16;

/// Maximum linear-probe attempts before a key is declared absent
/// (FNV mode only; collisionless mode never probes past attempt 0).
pub const MAX_PROBES: u64 = 64;

/// Retry budget for PUT/DELETE CAS races.
pub const MAX_RETRIES: u32 = 32;

/// A buffer size class backing one free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass {
    /// Buffer length in bytes.
    pub buf_len: u64,
    /// Number of buffers to provision.
    pub count: u64,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct PrismKvConfig {
    /// Hash table capacity in slots.
    pub capacity: u64,
    /// Key-to-slot mapping.
    pub scheme: HashScheme,
    /// Largest entry (header + key + value) the store accepts; also the
    /// GET read length.
    pub max_entry_len: u32,
    /// Buffer size classes, ascending (§3.2 recommends powers of two).
    pub classes: Vec<SizeClass>,
}

impl PrismKvConfig {
    /// The paper's evaluation configuration scaled to `n_keys` keys with
    /// `value_len`-byte values and 8-byte keys (§6.2), collisionless.
    pub fn paper(n_keys: u64, value_len: usize) -> Self {
        let entry_len = entry::encoded_len(8, value_len) as u64;
        PrismKvConfig {
            capacity: n_keys,
            scheme: HashScheme::Collisionless,
            max_entry_len: entry_len as u32,
            classes: vec![SizeClass {
                buf_len: entry_len,
                // Live entries plus headroom for in-flight updates.
                count: n_keys + (n_keys / 8).max(64),
            }],
        }
    }
}

/// Everything a client needs to address the store (exchanged at
/// connection setup in a real deployment).
#[derive(Debug, Clone)]
pub struct KvView {
    /// Base of the slot array.
    pub table_addr: u64,
    /// Rkey of the data region (slots + buffer pools).
    pub data_rkey: u32,
    /// Slots in the table.
    pub capacity: u64,
    /// Key-to-slot mapping.
    pub scheme: HashScheme,
    /// GET read length.
    pub max_entry_len: u32,
    /// `(freelist id, buffer length)` per class, ascending.
    pub classes: Vec<(FreeListId, u64)>,
}

impl KvView {
    /// Address of slot `i`.
    pub fn slot_addr(&self, i: u64) -> u64 {
        self.table_addr + i * SLOT
    }

    /// Smallest class whose buffers fit `len` bytes.
    pub fn class_for(&self, len: u64) -> Option<FreeListId> {
        self.classes
            .iter()
            .find(|(_, buf_len)| *buf_len >= len)
            .map(|(id, _)| *id)
    }
}

const RPC_FREE: u8 = 0x01;
const RPC_FREE_BATCH: u8 = 0x04;

/// The PRISM-KV server: a [`PrismServer`] with the store's layout,
/// free lists, and reclaim RPC installed.
pub struct PrismKvServer {
    server: Arc<PrismServer>,
    view: KvView,
    refill: prism_rdma::sync::Mutex<Vec<RefillState>>,
    /// `(next, end)` of the registered headroom the refill daemon carves
    /// from.
    headroom: prism_rdma::sync::Mutex<(u64, u64)>,
}

/// Per-class refill bookkeeping for [`PrismKvServer::maybe_refill`].
#[derive(Debug)]
struct RefillState {
    id: FreeListId,
    stride: u64,
    /// Refill when availability drops below this many buffers.
    low_water: usize,
    /// Buffers added per refill.
    batch: u64,
}

struct PoolRange {
    id: FreeListId,
    base: u64,
    stride: u64,
    count: u64,
}

impl PrismKvServer {
    /// Builds a server for `config`, sizing the arena automatically.
    pub fn new(config: &PrismKvConfig) -> Self {
        let table_len = (config.capacity * SLOT).next_multiple_of(64);
        let pools_len: u64 = config
            .classes
            .iter()
            .map(|c| c.buf_len.next_multiple_of(64) * c.count)
            .sum();
        // Headroom inside the same registration feeds the refill daemon
        // (§6.1): new buffers must satisfy the indirect-GET same-rkey
        // rule, so they have to live inside the data region.
        let headroom_len = (pools_len / 4).next_multiple_of(64).max(1 << 16);
        let server = Arc::new(PrismServer::new(
            table_len + pools_len + headroom_len + (1 << 20),
        ));

        // One region spanning slots, pools, and refill headroom so
        // indirect GETs satisfy the same-rkey rule.
        let (data_base, data_rkey) =
            server.carve_region(table_len + pools_len + headroom_len, 64, AccessFlags::FULL);
        let table_addr = data_base;

        let mut off = table_len;
        let mut classes = Vec::new();
        let mut ranges = Vec::new();
        for (i, c) in config.classes.iter().enumerate() {
            let id = FreeListId(i as u32);
            let stride = c.buf_len.next_multiple_of(64);
            let base = data_base + off;
            server.freelists().register(id, c.buf_len);
            server
                .freelists()
                .post(id, (0..c.count).map(|j| base + j * stride))
                .expect("fresh free list accepts posts");
            classes.push((id, c.buf_len));
            ranges.push(PoolRange {
                id,
                base,
                stride,
                count: c.count,
            });
            off += stride * c.count;
        }

        // Reclaim RPC: [RPC_FREE, addr u64 LE] or the batched form
        // [RPC_FREE_BATCH, count u16 LE, addrs...].
        let freelists = Arc::clone(server.freelists());
        server.set_rpc_handler(Arc::new(move |req: &[u8]| {
            let free_one = |addr: u64| -> bool {
                for r in &ranges {
                    if addr >= r.base
                        && addr < r.base + r.stride * r.count
                        && (addr - r.base) % r.stride == 0
                    {
                        freelists.post(r.id, [addr]).expect("class registered");
                        return true;
                    }
                }
                false
            };
            if req.len() == 9 && req[0] == RPC_FREE {
                let addr = u64::from_le_bytes(req[1..9].try_into().expect("9-byte message"));
                if free_one(addr) {
                    return vec![0];
                }
            } else if req.len() >= 3 && req[0] == RPC_FREE_BATCH {
                // Batched reclamation (§3.2: "batching can be employed at
                // both client and server sides to minimize overhead").
                let n = u16::from_le_bytes(req[1..3].try_into().expect("2 bytes")) as usize;
                if req.len() == 3 + n * 8 {
                    let ok = (0..n).all(|i| {
                        let off = 3 + i * 8;
                        free_one(u64::from_le_bytes(
                            req[off..off + 8].try_into().expect("8 bytes"),
                        ))
                    });
                    return vec![if ok { 0 } else { 0xFF }];
                }
            }
            vec![0xFF]
        }));

        let refill = classes
            .iter()
            .map(|&(id, buf_len)| RefillState {
                id,
                stride: buf_len.next_multiple_of(64),
                low_water: 16,
                batch: 64,
            })
            .collect();
        let headroom_base = data_base + table_len + pools_len;
        PrismKvServer {
            server,
            refill: prism_rdma::sync::Mutex::new(refill),
            headroom: prism_rdma::sync::Mutex::new((headroom_base, headroom_base + headroom_len)),
            view: KvView {
                table_addr,
                data_rkey: data_rkey.0,
                capacity: config.capacity,
                scheme: config.scheme,
                max_entry_len: config.max_entry_len,
                classes,
            },
        }
    }

    /// The underlying host (for direct execution in tests/live mode).
    pub fn server(&self) -> &Arc<PrismServer> {
        &self.server
    }

    /// The client-visible layout.
    pub fn view(&self) -> &KvView {
        &self.view
    }

    /// The periodic control-plane check of §6.1: the server
    /// "periodically checks if more buffers are needed" and posts fresh
    /// ones when a size class runs low. New buffers are carved from the
    /// registered headroom (they must stay inside the data region to
    /// satisfy the indirect-GET same-rkey rule); once the headroom is
    /// exhausted the refill stops and ALLOCATE falls back to
    /// Receiver-Not-Ready flow control. Returns the number of buffers
    /// added.
    pub fn maybe_refill(&self) -> u64 {
        let mut added = 0;
        let refill = self.refill.lock();
        for r in refill.iter() {
            if self.server.freelists().available(r.id) >= r.low_water {
                continue;
            }
            let Some(base) = self.carve_headroom(r.stride * r.batch) else {
                continue;
            };
            self.server
                .freelists()
                .post(r.id, (0..r.batch).map(|j| base + j * r.stride))
                .expect("class registered");
            added += r.batch;
        }
        added
    }

    fn carve_headroom(&self, len: u64) -> Option<u64> {
        let mut hr = self.headroom.lock();
        if hr.0 + len > hr.1 {
            return None;
        }
        let base = hr.0;
        hr.0 += len;
        Some(base)
    }

    /// Opens a client with its own connection scratch slot.
    pub fn open_client(&self) -> PrismKvClient {
        let conn = self.server.open_connection();
        PrismKvClient {
            view: self.view.clone(),
            scratch_addr: conn.scratch_addr,
            scratch_rkey: conn.scratch_rkey.0,
        }
    }
}

impl std::fmt::Debug for PrismKvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrismKvServer")
            .field("capacity", &self.view.capacity)
            .finish_non_exhaustive()
    }
}

/// A PRISM-KV client: builds the op state machines.
#[derive(Debug, Clone)]
pub struct PrismKvClient {
    view: KvView,
    scratch_addr: u64,
    scratch_rkey: u32,
}

impl PrismKvClient {
    /// The store layout this client addresses.
    pub fn view(&self) -> &KvView {
        &self.view
    }

    /// Starts a GET; returns the machine and its first request.
    pub fn get(&self, key: &[u8]) -> (GetOp, Request) {
        let op = GetOp {
            key: key.to_vec(),
            attempt: 0,
        };
        let req = op.probe_request(self);
        (op, req)
    }

    /// Starts a PUT.
    pub fn put(&self, key: &[u8], value: &[u8]) -> (PutOp, Request) {
        let op = PutOp {
            key: key.to_vec(),
            value: value.to_vec(),
            attempt: 0,
            retries: 0,
            state: PutState::Probe,
            delete: false,
        };
        let req = op.probe_request(self);
        (op, req)
    }

    /// Starts a DELETE (a PUT machine that installs null).
    pub fn delete(&self, key: &[u8]) -> (PutOp, Request) {
        let op = PutOp {
            key: key.to_vec(),
            value: Vec::new(),
            attempt: 0,
            retries: 0,
            state: PutState::Probe,
            delete: true,
        };
        let req = op.probe_request(self);
        (op, req)
    }

    fn free_request(&self, addr: u64) -> Request {
        let mut msg = Vec::with_capacity(9);
        msg.push(RPC_FREE);
        msg.extend_from_slice(&addr.to_le_bytes());
        Request::Rpc(msg)
    }
}

/// GET state machine: one bounded indirect READ per probe (§6.1).
#[derive(Debug, Clone)]
pub struct GetOp {
    key: Vec<u8>,
    attempt: u64,
}

impl GetOp {
    fn probe_request(&self, c: &PrismKvClient) -> Request {
        let slot = c.view.scheme.slot(&self.key, self.attempt, c.view.capacity);
        Request::Chain(vec![ops::read_indirect_bounded(
            c.view.slot_addr(slot),
            c.view.max_entry_len,
            c.view.data_rkey,
        )])
    }

    /// Feeds the probe reply; returns the next step.
    pub fn on_reply(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep {
        let results = reply.into_chain();
        let r = &results[0];
        match &r.status {
            OpStatus::Ok => match entry::decode(&r.data) {
                Some((k, v)) if k == self.key => KvStep::done(KvOutcome::Value(Some(v.to_vec()))),
                _ => self.next_probe(c),
            },
            // Null pointer: the slot is empty. Under linear probing an
            // empty slot terminates the probe sequence.
            OpStatus::Error(RdmaError::BadIndirectTarget(0)) => {
                KvStep::done(KvOutcome::Value(None))
            }
            _ => KvStep::done(KvOutcome::Failed("GET probe error")),
        }
    }

    fn next_probe(&mut self, c: &PrismKvClient) -> KvStep {
        self.attempt += 1;
        let limit = match c.view.scheme {
            HashScheme::Collisionless => 1,
            HashScheme::Fnv => MAX_PROBES.min(c.view.capacity),
        };
        if self.attempt >= limit {
            KvStep::done(KvOutcome::Value(None))
        } else {
            KvStep::send(self.probe_request(c))
        }
    }
}

#[derive(Debug, Clone)]
enum PutState {
    Probe,
    Install { old: [u8; 16] },
}

/// PUT/DELETE state machine: probe round trip, then the install chain
/// (§6.1). Retries the whole sequence on CAS races.
#[derive(Debug, Clone)]
pub struct PutOp {
    key: Vec<u8>,
    value: Vec<u8>,
    attempt: u64,
    retries: u32,
    state: PutState,
    delete: bool,
}

impl PutOp {
    fn probe_request(&self, c: &PrismKvClient) -> Request {
        let slot = c.view.scheme.slot(&self.key, self.attempt, c.view.capacity);
        let slot_addr = c.view.slot_addr(slot);
        // Op 1 captures the raw (ptr, bound) word for the CAS compare;
        // op 2 fetches the entry header + key to verify slot ownership.
        Request::Chain(vec![
            ops::read(slot_addr, SLOT as u32, c.view.data_rkey),
            ops::read_indirect_bounded(
                slot_addr,
                (entry::HEADER + self.key.len()) as u32,
                c.view.data_rkey,
            ),
        ])
    }

    fn install_request(&self, c: &PrismKvClient, slot: u64, old: [u8; 16]) -> Option<Request> {
        let slot_addr = c.view.slot_addr(slot);
        if self.delete {
            return Some(Request::Chain(vec![ops::cas_args(
                CasMode::Eq,
                slot_addr,
                c.view.data_rkey,
                DataArg::Inline(old.to_vec()),
                DataArg::Inline(vec![0u8; 16]),
                16,
                full_mask(16),
                full_mask(16),
            )]));
        }
        let e = entry::encode(&self.key, &self.value);
        let bound = e.len() as u64;
        let class = c.view.class_for(bound)?;
        let scratch = Redirect {
            addr: c.scratch_addr,
            rkey: c.scratch_rkey,
        };
        Some(Request::Chain(vec![
            // Stage the bound at scratch+8 (the slot's second word).
            ops::write(
                c.scratch_addr + 8,
                bound.to_le_bytes().to_vec(),
                c.scratch_rkey,
            ),
            // Allocate the entry; its address lands at scratch+0.
            ops::allocate(class, e).redirect(scratch),
            // Install (new_ptr, bound) if the slot is unchanged.
            ops::cas_args(
                CasMode::Eq,
                slot_addr,
                c.view.data_rkey,
                DataArg::Inline(old.to_vec()),
                DataArg::Remote {
                    addr: c.scratch_addr,
                    rkey: c.scratch_rkey,
                },
                16,
                full_mask(16),
                full_mask(16),
            )
            .conditional(),
            // Recover the new pointer so a losing client can reclaim it.
            ops::read(c.scratch_addr, 8, c.scratch_rkey),
        ]))
    }

    /// Feeds a reply; returns the next step.
    pub fn on_reply(&mut self, c: &PrismKvClient, reply: Reply) -> KvStep {
        let results = reply.into_chain();
        match self.state.clone() {
            PutState::Probe => {
                let slot_word = match results[0].expect_data() {
                    Ok(d) if d.len() == 16 => {
                        let mut w = [0u8; 16];
                        w.copy_from_slice(d);
                        w
                    }
                    _ => return KvStep::done(KvOutcome::Failed("PUT probe error")),
                };
                let ptr = u64::from_le_bytes(slot_word[0..8].try_into().expect("8 bytes"));
                let slot = c.view.scheme.slot(&self.key, self.attempt, c.view.capacity);
                if ptr == 0 {
                    // Empty slot: claim it (compare against the observed
                    // empty word).
                    return self.to_install(c, slot, slot_word);
                }
                // Occupied: does it hold our key?
                match &results[1].status {
                    OpStatus::Ok => match entry::decode_key(&results[1].data) {
                        Some(k) if k == self.key => self.to_install(c, slot, slot_word),
                        _ => self.next_probe(c),
                    },
                    // Pointer was non-null at op 1 but null/invalid at
                    // op 2: a concurrent delete. Retry the probe.
                    _ => self.retry_probe(c),
                }
            }
            PutState::Install { old } => {
                if self.delete {
                    let cas = &results[0];
                    return match &cas.status {
                        OpStatus::Ok => {
                            let old_ptr =
                                u64::from_le_bytes(old[0..8].try_into().expect("8 bytes"));
                            KvStep::Done {
                                outcome: KvOutcome::Written,
                                background: (old_ptr != 0).then(|| c.free_request(old_ptr)),
                            }
                        }
                        OpStatus::CasFailed => self.retry_probe(c),
                        _ => KvStep::done(KvOutcome::Failed("DELETE CAS error")),
                    };
                }
                // [write, allocate, cas, read-back]
                if let OpStatus::Error(e) = &results[1].status {
                    let _ = e;
                    return KvStep::done(KvOutcome::Failed("allocation failed"));
                }
                let new_ptr = match results[3].expect_data() {
                    Ok(d) if d.len() == 8 => u64::from_le_bytes(d.try_into().expect("8 bytes")),
                    _ => return KvStep::done(KvOutcome::Failed("scratch read error")),
                };
                match &results[2].status {
                    OpStatus::Ok => {
                        let old_ptr = u64::from_le_bytes(old[0..8].try_into().expect("8 bytes"));
                        KvStep::Done {
                            outcome: KvOutcome::Written,
                            background: (old_ptr != 0).then(|| c.free_request(old_ptr)),
                        }
                    }
                    OpStatus::CasFailed => {
                        // Lost the race: reclaim our orphaned buffer and
                        // retry from the probe.
                        let step = self.retry_probe(c);
                        attach_background(step, c.free_request(new_ptr))
                    }
                    _ => KvStep::done(KvOutcome::Failed("install CAS error")),
                }
            }
        }
    }

    fn to_install(&mut self, c: &PrismKvClient, slot: u64, old: [u8; 16]) -> KvStep {
        match self.install_request(c, slot, old) {
            Some(req) => {
                self.state = PutState::Install { old };
                KvStep::send(req)
            }
            None => KvStep::done(KvOutcome::Failed("entry exceeds all size classes")),
        }
    }

    fn next_probe(&mut self, c: &PrismKvClient) -> KvStep {
        self.attempt += 1;
        let limit = match c.view.scheme {
            HashScheme::Collisionless => 1,
            HashScheme::Fnv => MAX_PROBES.min(c.view.capacity),
        };
        if self.attempt >= limit {
            return KvStep::done(KvOutcome::Failed("hash table full along probe path"));
        }
        self.state = PutState::Probe;
        KvStep::send(self.probe_request(c))
    }

    fn retry_probe(&mut self, c: &PrismKvClient) -> KvStep {
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            return KvStep::done(KvOutcome::Failed("retry budget exhausted"));
        }
        self.attempt = 0;
        self.state = PutState::Probe;
        KvStep::send(self.probe_request(c))
    }
}

fn attach_background(step: KvStep, extra: Request) -> KvStep {
    match step {
        KvStep::Send {
            request,
            background: None,
        } => KvStep::Send {
            request,
            background: Some(extra),
        },
        KvStep::Done {
            outcome,
            background: None,
        } => KvStep::Done {
            outcome,
            background: Some(extra),
        },
        other => other, // never stacks two backgrounds in practice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::msg::execute_local;

    /// Drives a machine to completion against a local server, sending
    /// background requests fire-and-forget. Returns the outcome and the
    /// number of round trips.
    pub(crate) fn drive_get(
        server: &PrismKvServer,
        c: &PrismKvClient,
        key: &[u8],
    ) -> (KvOutcome, u32) {
        let (mut op, req) = c.get(key);
        let mut rtts = 1;
        let mut reply = execute_local(server.server(), &req);
        loop {
            match op.on_reply(c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    send_bg(server, background);
                    rtts += 1;
                    reply = execute_local(server.server(), &request);
                }
                KvStep::Done {
                    outcome,
                    background,
                } => {
                    send_bg(server, background);
                    return (outcome, rtts);
                }
            }
        }
    }

    pub(crate) fn drive_put(
        server: &PrismKvServer,
        c: &PrismKvClient,
        key: &[u8],
        value: &[u8],
    ) -> (KvOutcome, u32) {
        let (mut op, req) = c.put(key, value);
        let mut rtts = 1;
        let mut reply = execute_local(server.server(), &req);
        loop {
            match op.on_reply(c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    send_bg(server, background);
                    rtts += 1;
                    reply = execute_local(server.server(), &request);
                }
                KvStep::Done {
                    outcome,
                    background,
                } => {
                    send_bg(server, background);
                    return (outcome, rtts);
                }
            }
        }
    }

    fn send_bg(server: &PrismKvServer, bg: Option<Request>) {
        if let Some(req) = bg {
            let _ = execute_local(server.server(), &req);
        }
    }

    fn small_store() -> (PrismKvServer, PrismKvClient) {
        let cfg = PrismKvConfig {
            capacity: 64,
            scheme: HashScheme::Fnv,
            max_entry_len: 256,
            classes: vec![
                SizeClass {
                    buf_len: 64,
                    count: 32,
                },
                SizeClass {
                    buf_len: 256,
                    count: 32,
                },
            ],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        (s, c)
    }

    #[test]
    fn get_missing_key_is_none() {
        let (s, c) = small_store();
        let (outcome, rtts) = drive_get(&s, &c, b"absent");
        assert_eq!(outcome, KvOutcome::Value(None));
        assert_eq!(rtts, 1, "a missing key costs one round trip");
    }

    #[test]
    fn put_then_get_round_trips() {
        let (s, c) = small_store();
        let (o, rtts) = drive_put(&s, &c, b"alpha", b"value-one");
        assert_eq!(o, KvOutcome::Written);
        assert_eq!(rtts, 2, "PUT = probe + install (§6.1)");
        let (o, rtts) = drive_get(&s, &c, b"alpha");
        assert_eq!(o, KvOutcome::Value(Some(b"value-one".to_vec())));
        assert_eq!(rtts, 1, "GET = one indirect READ (§6.1)");
    }

    #[test]
    fn overwrite_replaces_value_and_frees_old_buffer() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"k", b"v1");
        let avail_before = s.server().freelists().available(FreeListId(0));
        drive_put(&s, &c, b"k", b"v2");
        let (o, _) = drive_get(&s, &c, b"k");
        assert_eq!(o, KvOutcome::Value(Some(b"v2".to_vec())));
        // Old buffer reclaimed: available count unchanged (pop one, free one).
        assert_eq!(
            s.server().freelists().available(FreeListId(0)),
            avail_before
        );
    }

    #[test]
    fn values_pick_smallest_fitting_class() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"small", b"x");
        assert_eq!(s.server().freelists().available(FreeListId(0)), 31);
        assert_eq!(s.server().freelists().available(FreeListId(1)), 32);
        drive_put(&s, &c, b"large", &[7u8; 200]);
        assert_eq!(s.server().freelists().available(FreeListId(1)), 31);
    }

    #[test]
    fn oversized_value_fails_cleanly() {
        let (s, c) = small_store();
        let (o, _) = drive_put(&s, &c, b"big", &[0u8; 1000]);
        assert_eq!(o, KvOutcome::Failed("entry exceeds all size classes"));
    }

    #[test]
    fn delete_removes_key_and_frees_buffer() {
        let (s, c) = small_store();
        drive_put(&s, &c, b"gone", b"soon");
        let before = s.server().freelists().available(FreeListId(0));
        let (mut op, req) = c.delete(b"gone");
        let mut reply = execute_local(s.server(), &req);
        let mut bg_sent = 0;
        loop {
            match op.on_reply(&c, reply) {
                KvStep::Send {
                    request,
                    background,
                } => {
                    if let Some(b) = background {
                        execute_local(s.server(), &b);
                        bg_sent += 1;
                    }
                    reply = execute_local(s.server(), &request);
                }
                KvStep::Done {
                    outcome,
                    background,
                } => {
                    if let Some(b) = background {
                        execute_local(s.server(), &b);
                        bg_sent += 1;
                    }
                    assert_eq!(outcome, KvOutcome::Written);
                    break;
                }
            }
        }
        assert_eq!(bg_sent, 1, "delete frees the old buffer");
        assert_eq!(s.server().freelists().available(FreeListId(0)), before + 1);
        let (o, _) = drive_get(&s, &c, b"gone");
        assert_eq!(o, KvOutcome::Value(None));
    }

    #[test]
    fn colliding_keys_coexist_via_probing() {
        // Force collisions by filling a tiny table.
        let cfg = PrismKvConfig {
            capacity: 4,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 16,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        for i in 0..4u8 {
            let (o, _) = drive_put(&s, &c, &[b'k', i], &[b'v', i]);
            assert_eq!(o, KvOutcome::Written, "key {i}");
        }
        for i in 0..4u8 {
            let (o, _) = drive_get(&s, &c, &[b'k', i]);
            assert_eq!(o, KvOutcome::Value(Some(vec![b'v', i])), "key {i}");
        }
    }

    #[test]
    fn table_full_put_fails() {
        let cfg = PrismKvConfig {
            capacity: 2,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 16,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        assert_eq!(drive_put(&s, &c, b"a", b"1").0, KvOutcome::Written);
        assert_eq!(drive_put(&s, &c, b"b", b"2").0, KvOutcome::Written);
        let (o, _) = drive_put(&s, &c, b"c", b"3");
        assert!(matches!(o, KvOutcome::Failed(_)));
    }

    #[test]
    fn collisionless_paper_config() {
        let cfg = PrismKvConfig::paper(128, 32);
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        use crate::hash::key_bytes;
        for k in 0..128u64 {
            let (o, rtts) = drive_put(&s, &c, &key_bytes(k), &[k as u8; 32]);
            assert_eq!(o, KvOutcome::Written);
            assert_eq!(rtts, 2);
        }
        for k in 0..128u64 {
            let (o, rtts) = drive_get(&s, &c, &key_bytes(k));
            assert_eq!(o, KvOutcome::Value(Some(vec![k as u8; 32])));
            assert_eq!(rtts, 1);
        }
    }

    #[test]
    fn exhausted_freelist_fails_put() {
        let cfg = PrismKvConfig {
            capacity: 16,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 2,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        assert_eq!(drive_put(&s, &c, b"a", b"1").0, KvOutcome::Written);
        assert_eq!(drive_put(&s, &c, b"b", b"2").0, KvOutcome::Written);
        let (o, _) = drive_put(&s, &c, b"c", b"3");
        assert_eq!(o, KvOutcome::Failed("allocation failed"));
    }

    #[test]
    fn refill_daemon_extends_a_drained_class() {
        let cfg = PrismKvConfig {
            capacity: 64,
            scheme: HashScheme::Fnv,
            max_entry_len: 64,
            classes: vec![SizeClass {
                buf_len: 64,
                count: 8,
            }],
        };
        let s = PrismKvServer::new(&cfg);
        let c = s.open_client();
        // Fill all 8 buffers; the 9th PUT fails without a refill.
        for i in 0..8u8 {
            assert_eq!(drive_put(&s, &c, &[b'k', i], &[i; 8]).0, KvOutcome::Written);
        }
        assert_eq!(
            drive_put(&s, &c, b"k9", b"x").0,
            KvOutcome::Failed("allocation failed")
        );
        // The §6.1 periodic check kicks in.
        let added = s.maybe_refill();
        assert!(added > 0, "refill must post new buffers");
        assert_eq!(drive_put(&s, &c, b"k9", b"x").0, KvOutcome::Written);
        // Refilled buffers satisfy the same-rkey rule: GET works.
        assert_eq!(
            drive_get(&s, &c, b"k9").0,
            KvOutcome::Value(Some(b"x".to_vec()))
        );
        // When availability is healthy, the check is a no-op.
        assert_eq!(s.maybe_refill(), 0);
    }

    #[test]
    fn concurrent_puts_same_key_converge() {
        use std::thread;
        let cfg = PrismKvConfig::paper(16, 32);
        let s = Arc::new(PrismKvServer::new(&cfg));
        let key = crate::hash::key_bytes(3);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let c = s.open_client();
                    for j in 0..50u8 {
                        let val: Vec<u8> = [i as u8, j].repeat(16);
                        let (o, _) = drive_put(&s, &c, &crate::hash::key_bytes(3), &val);
                        assert_eq!(o, KvOutcome::Written);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = s.open_client();
        let (o, _) = drive_get(&s, &c, &key);
        match o {
            KvOutcome::Value(Some(v)) => assert_eq!(v.len(), 32),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
