//! On-disk — rather, in-remote-memory — entry format shared by both
//! stores: `[klen u32 | vlen u32 | version u32 | crc u32 | key | value]`.
//!
//! PRISM-KV stores entries in ALLOCATE'd buffers referenced by
//! `(ptr, bound)` hash slots; Pilaf stores them in its extents region.
//! The header makes entries self-describing so a bounded indirect READ
//! (which may return more bytes than the entry if the request length
//! exceeds the bound — it returns `min(len, bound)`) can be parsed
//! without out-of-band length information.
//!
//! The `crc` field is a Pilaf-style self-verification checksum over
//! `klen || vlen || version || key || value`. PRISM-KV's out-of-place
//! updates make it unnecessary against *racing* writers (the paper's
//! Figure 3 point stands — GETs never pay a verify-retry loop in the
//! common case), but it is what turns a torn install or at-rest bit
//! rot from a silently wrong answer into a typed
//! [`EntryError::Corrupt`] the client can re-read or abort on. The
//! `version` binds the checksum to a specific install, so an old CRC
//! can never vouch for a newer value's bytes.

use prism_core::crc::Crc32;

/// Header bytes preceding key and value.
pub const HEADER: usize = 16;

/// Bytes of the header covered by the checksum (everything before the
/// `crc` field itself).
const CRC_COVER: usize = 12;

/// A failed [`decode_verified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryError {
    /// The bytes are too short for the lengths the header claims —
    /// either a short read or a header so damaged its lengths point
    /// past the buffer.
    Truncated,
    /// Structure intact but the checksum does not match: a torn
    /// install or bit rot in key, value, or header.
    Corrupt,
}

fn entry_crc(header: &[u8], key: &[u8], value: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&header[..CRC_COVER]).update(key).update(value);
    c.finish()
}

/// Encodes an entry with an explicit version stamp.
pub fn encode_versioned(key: &[u8], value: &[u8], version: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER + key.len() + value.len());
    v.extend_from_slice(&(key.len() as u32).to_le_bytes());
    v.extend_from_slice(&(value.len() as u32).to_le_bytes());
    v.extend_from_slice(&version.to_le_bytes());
    v.extend_from_slice(&[0u8; 4]); // crc placeholder
    v.extend_from_slice(key);
    v.extend_from_slice(value);
    let crc = entry_crc(&v[..HEADER], key, value);
    v[CRC_COVER..HEADER].copy_from_slice(&crc.to_le_bytes());
    v
}

/// Encodes an entry (version 0 — callers that don't track install
/// versions, e.g. the Pilaf baseline, whose extents carry their own
/// index-level checksums).
pub fn encode(key: &[u8], value: &[u8]) -> Vec<u8> {
    encode_versioned(key, value, 0)
}

/// Total encoded length for a key/value pair.
pub fn encoded_len(key_len: usize, value_len: usize) -> usize {
    HEADER + key_len + value_len
}

/// Structural decode, tolerating trailing garbage (bounded reads return
/// exactly the bound, which equals the entry length, but defensive
/// parsing costs nothing). Returns `(key, value)` without verifying
/// the checksum — callers that need integrity use [`decode_verified`].
pub fn decode(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let (k, v, _) = split(bytes).ok()?;
    Some((k, v))
}

/// Verified decode: structural parse plus checksum check. Returns
/// `(key, value, version)` or a typed error — a damaged entry is never
/// silently returned as data.
pub fn decode_verified(bytes: &[u8]) -> Result<(&[u8], &[u8], u32), EntryError> {
    let (key, value, version) = split(bytes)?;
    let stored = u32::from_le_bytes(bytes[CRC_COVER..HEADER].try_into().expect("4 bytes"));
    if stored != entry_crc(&bytes[..HEADER], key, value) {
        return Err(EntryError::Corrupt);
    }
    Ok((key, value, version))
}

fn split(bytes: &[u8]) -> Result<(&[u8], &[u8], u32), EntryError> {
    if bytes.len() < HEADER {
        return Err(EntryError::Truncated);
    }
    let klen = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let vlen = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let total = HEADER
        .checked_add(klen)
        .and_then(|t| t.checked_add(vlen))
        .ok_or(EntryError::Truncated)?;
    if bytes.len() < total {
        return Err(EntryError::Truncated);
    }
    Ok((
        &bytes[HEADER..HEADER + klen],
        &bytes[HEADER + klen..total],
        version,
    ))
}

/// Just the key, for probe verification. Unlike [`decode`], this only
/// needs the header and key bytes to be present — PUT probes read
/// exactly `HEADER + key_len` bytes of the entry (§6.1), not the value.
pub fn decode_key(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER {
        return None;
    }
    let klen = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let end = HEADER.checked_add(klen)?;
    if bytes.len() < end {
        return None;
    }
    Some(&bytes[HEADER..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let e = encode(b"key-1", b"some value bytes");
        let (k, v) = decode(&e).unwrap();
        assert_eq!(k, b"key-1");
        assert_eq!(v, b"some value bytes");
        assert_eq!(e.len(), encoded_len(5, 16));
        assert_eq!(
            decode_verified(&e).unwrap(),
            (&b"key-1"[..], &b"some value bytes"[..], 0)
        );
    }

    #[test]
    fn version_round_trips_and_is_covered_by_crc() {
        let e = encode_versioned(b"k", b"v", 41);
        assert_eq!(decode_verified(&e).unwrap().2, 41);
        let mut rotted = e.clone();
        rotted[8] ^= 1; // flip a version bit
        assert_eq!(decode_verified(&rotted), Err(EntryError::Corrupt));
    }

    #[test]
    fn empty_key_and_value() {
        let e = encode(b"", b"");
        assert_eq!(decode(&e).unwrap(), (&b""[..], &b""[..]));
        assert!(decode_verified(&e).is_ok());
    }

    #[test]
    fn truncated_inputs_rejected() {
        let e = encode(b"abc", b"defgh");
        for cut in 0..e.len() {
            if cut < encoded_len(3, 5) {
                assert!(decode(&e[..cut]).is_none(), "cut={cut}");
                assert_eq!(
                    decode_verified(&e[..cut]),
                    Err(EntryError::Truncated),
                    "cut={cut}"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let e = encode_versioned(b"key", b"payload bytes", 7);
        for byte in 0..e.len() {
            for bit in 0..8 {
                let mut m = e.clone();
                m[byte] ^= 1 << bit;
                // A flip either breaks the structure (header lengths now
                // point past the buffer) or fails the checksum; it never
                // decodes to different bytes.
                match decode_verified(&m) {
                    Err(_) => {}
                    Ok(got) => panic!("flip at {byte}:{bit} decoded as {got:?}"),
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_tolerated() {
        let mut e = encode(b"k", b"v");
        e.extend_from_slice(&[0xFF; 32]);
        assert_eq!(decode(&e).unwrap(), (&b"k"[..], &b"v"[..]));
        assert!(decode_verified(&e).is_ok());
    }

    #[test]
    fn hostile_lengths_do_not_overflow() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 64]);
        assert!(decode(&bytes).is_none());
        assert_eq!(decode_verified(&bytes), Err(EntryError::Truncated));
    }
}
