//! On-disk — rather, in-remote-memory — entry format shared by both
//! stores: `[klen u32 | vlen u32 | key | value]`.
//!
//! PRISM-KV stores entries in ALLOCATE'd buffers referenced by
//! `(ptr, bound)` hash slots; Pilaf stores them in its extents region.
//! The header makes entries self-describing so a bounded indirect READ
//! (which may return more bytes than the entry if the request length
//! exceeds the bound — it returns `min(len, bound)`) can be parsed
//! without out-of-band length information.

/// Header bytes preceding key and value.
pub const HEADER: usize = 8;

/// Encodes an entry.
pub fn encode(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(HEADER + key.len() + value.len());
    v.extend_from_slice(&(key.len() as u32).to_le_bytes());
    v.extend_from_slice(&(value.len() as u32).to_le_bytes());
    v.extend_from_slice(key);
    v.extend_from_slice(value);
    v
}

/// Total encoded length for a key/value pair.
pub fn encoded_len(key_len: usize, value_len: usize) -> usize {
    HEADER + key_len + value_len
}

/// Decodes an entry, tolerating trailing garbage (bounded reads return
/// exactly the bound, which equals the entry length, but defensive
/// parsing costs nothing). Returns `(key, value)`.
pub fn decode(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    if bytes.len() < HEADER {
        return None;
    }
    let klen = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
    let total = HEADER.checked_add(klen)?.checked_add(vlen)?;
    if bytes.len() < total {
        return None;
    }
    Some((&bytes[HEADER..HEADER + klen], &bytes[HEADER + klen..total]))
}

/// Just the key, for probe verification. Unlike [`decode`], this only
/// needs the header and key bytes to be present — PUT probes read
/// exactly `HEADER + key_len` bytes of the entry (§6.1), not the value.
pub fn decode_key(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER {
        return None;
    }
    let klen = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let end = HEADER.checked_add(klen)?;
    if bytes.len() < end {
        return None;
    }
    Some(&bytes[HEADER..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let e = encode(b"key-1", b"some value bytes");
        let (k, v) = decode(&e).unwrap();
        assert_eq!(k, b"key-1");
        assert_eq!(v, b"some value bytes");
        assert_eq!(e.len(), encoded_len(5, 16));
    }

    #[test]
    fn empty_key_and_value() {
        let e = encode(b"", b"");
        assert_eq!(decode(&e).unwrap(), (&b""[..], &b""[..]));
    }

    #[test]
    fn truncated_inputs_rejected() {
        let e = encode(b"abc", b"defgh");
        for cut in 0..e.len() {
            if cut < e.len() {
                let d = decode(&e[..cut]);
                if cut < encoded_len(3, 5) {
                    assert!(d.is_none(), "cut={cut}");
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_tolerated() {
        let mut e = encode(b"k", b"v");
        e.extend_from_slice(&[0xFF; 32]);
        assert_eq!(decode(&e).unwrap(), (&b"k"[..], &b"v"[..]));
    }

    #[test]
    fn hostile_lengths_do_not_overflow() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 64]);
        assert!(decode(&bytes).is_none());
    }
}
