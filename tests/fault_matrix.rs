//! Fault-matrix smoke: every protocol family (KV, RS, TX) survives the
//! canonical fault mixes — loss-only, crash-only, loss-plus-crash, a
//! gray straggler window, and the full loss+crash+straggler stack —
//! making progress without panics while the injected faults visibly
//! bite. The straggler column runs with every tail-tolerance policy
//! disabled: a 4x-slowed server must be survivable on correctness
//! alone, hedging is an optimization (see `gray_gate`), never a
//! crutch. Windows are short fixed spans: the matrix is a gate, not a
//! benchmark.

use std::sync::Arc;

use prism_harness::adapters::{PrismKvAdapter, PrismRsAdapter, PrismTxAdapter};
use prism_harness::kv_exp;
use prism_harness::netsim::{run_closed_loop, RunResult, VerbPath};
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_rs::prism_rs::{RsCluster, RsConfig};
use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_tx::prism_tx::{TxCluster, TxConfig};
use prism_workload::{KeyDist, TxnGen, YcsbConfig};

/// Default matrix seed; `PRISM_TEST_SEED=<n>` overrides it so CI can
/// check the determinism claims at more than one point.
fn seed() -> u64 {
    std::env::var("PRISM_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5A0_7E57)
}
const KEYS: u64 = 256;
const VALUE: usize = 64;
const WARMUP: SimDuration = SimDuration::from_nanos(200_000);
const MEASURE: SimDuration = SimDuration::from_nanos(1_200_000);

/// One cell of the matrix: which fault ingredients are active.
#[derive(Clone, Copy)]
struct Mix {
    label: &'static str,
    loss: bool,
    crash: bool,
    straggler: bool,
}

const MATRIX: [Mix; 5] = [
    Mix {
        label: "loss-only",
        loss: true,
        crash: false,
        straggler: false,
    },
    Mix {
        label: "crash-only",
        loss: false,
        crash: true,
        straggler: false,
    },
    Mix {
        label: "loss+crash",
        loss: true,
        crash: true,
        straggler: false,
    },
    Mix {
        label: "straggler-only",
        loss: false,
        crash: false,
        straggler: true,
    },
    Mix {
        label: "loss+crash+straggler",
        loss: true,
        crash: true,
        straggler: true,
    },
];

/// Builds the plan for one cell. `crash_server` picks the victim so
/// quorum systems can keep a majority alive; `slow_server` takes the
/// 4x straggler window (kept off the crash victim so both gray and
/// fail-stop faults are live at once in the combined cell).
fn plan(mix: Mix, crash_server: usize, slow_server: usize, seed: u64) -> FaultPlan {
    let mut p = FaultPlan::seeded(seed).with_timeout(SimDuration::micros(60));
    if mix.loss {
        p = p.with_loss(0.02, 0.01);
    }
    if mix.crash {
        p = p.with_crash(
            crash_server,
            SimTime::from_nanos(400_000),
            SimTime::from_nanos(800_000),
        );
    }
    if mix.straggler {
        p = p.with_slowdown(
            slow_server,
            SimTime::from_nanos(300_000),
            SimTime::from_nanos(1_000_000),
            4,
        );
    }
    p
}

fn check(system: &str, mix: Mix, r: &RunResult) {
    assert!(
        r.tput_ops > 0.0,
        "{system}/{}: no progress: {r:?}",
        mix.label
    );
    if mix.loss {
        assert!(r.drops > 0, "{system}/{}: loss never bit: {r:?}", mix.label);
    }
    if mix.crash {
        assert!(
            r.crash_drops > 0,
            "{system}/{}: crash window never bit: {r:?}",
            mix.label
        );
    }
    if mix.straggler {
        assert!(
            r.slowdown_windows > 0,
            "{system}/{}: straggler window never bit: {r:?}",
            mix.label
        );
        assert_eq!(
            r.hedges, 0,
            "{system}/{}: the matrix runs policy-free",
            mix.label
        );
    }
}

#[test]
fn kv_survives_the_fault_matrix() {
    let seed = seed();
    for mix in MATRIX {
        let mut config = PrismKvConfig::paper(KEYS, VALUE);
        // Lost replies leak buffers until their frees are resent; give
        // the faulted store headroom.
        config.classes[0].count += 4_096;
        let server = PrismKvServer::new(&config);
        kv_exp::preload_prism(&server, KEYS, VALUE);
        let servers = vec![Arc::clone(server.server())];
        let r = run_closed_loop(
            &servers,
            &CostModel::testbed(),
            VerbPath::Nic,
            4,
            &mut |i| {
                Box::new(PrismKvAdapter::new(
                    server.open_client(),
                    YcsbConfig {
                        dist: KeyDist::uniform(KEYS),
                        read_fraction: 0.5,
                        value_len: VALUE,
                    },
                    SimRng::new(seed ^ ((i as u64 + 1) * 7)),
                ))
            },
            WARMUP,
            MEASURE,
            seed,
            &plan(mix, 0, 0, seed),
        );
        check("kv", mix, &r);
    }
}

#[test]
fn rs_survives_the_fault_matrix() {
    let seed = seed();
    for mix in MATRIX {
        let mut config = RsConfig::paper(8, VALUE as u64);
        config.spare_buffers += 4_096;
        let cluster = RsCluster::new(3, &config);
        let servers: Vec<_> = (0..3)
            .map(|r| Arc::clone(cluster.replica(r).server()))
            .collect();
        let r = run_closed_loop(
            &servers,
            &CostModel::testbed(),
            VerbPath::Nic,
            4,
            &mut |_| {
                Box::new(PrismRsAdapter::new(
                    cluster.open_client(),
                    KeyDist::uniform(8),
                    VALUE,
                    0.5,
                ))
            },
            WARMUP,
            MEASURE,
            seed,
            &plan(mix, 1, 2, seed),
        );
        check("rs", mix, &r);
    }
}

/// Regression: a loss-heavy plan over an under-provisioned arena must
/// end in clean pool-exhausted failures, not a hang or panic. Lost
/// replies leak spare buffers (their frees are never sent), so a tiny
/// spare pool drains mid-run; allocation failures must surface through
/// the protocol as failed/given-up operations while the run completes.
#[test]
fn rs_pool_exhaustion_fails_clean_under_heavy_loss() {
    let seed = seed();
    let mut config = RsConfig::paper(8, VALUE as u64);
    config.spare_buffers = 48;
    let cluster = RsCluster::new(3, &config);
    let servers: Vec<_> = (0..3)
        .map(|r| Arc::clone(cluster.replica(r).server()))
        .collect();
    let plan = FaultPlan::seeded(seed)
        .with_timeout(SimDuration::micros(60))
        .with_loss(0.30, 0.0);
    let r = run_closed_loop(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        8,
        &mut |_| {
            Box::new(PrismRsAdapter::new(
                cluster.open_client(),
                KeyDist::uniform(8),
                VALUE,
                0.5,
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
    );
    assert!(r.drops > 0, "loss never bit: {r:?}");
    assert!(
        r.failed > 0 && r.giveups > 0,
        "exhaustion must surface as clean failures/giveups: {r:?}"
    );
}

/// Regression for the loss-driven buffer spiral: under sustained reply
/// loss, PRISM-KV's pool level must stay *bounded by the fault counts*
/// — every missing buffer is either live in a slot, leaked by one lost
/// reply, or held by a frozen in-flight op — rather than spiraling with
/// run length as the old "provision more spares" workaround assumed.
/// And the leak is recoverable: one server-side [`PrismKvServer::
/// gc_sweep`] walks slots vs pools and restores the level to exactly
/// `count − live`.
#[test]
fn kv_long_loss_leak_is_bounded_and_gc_sweep_restores_the_pool() {
    let seed = seed();
    let config = PrismKvConfig::paper(KEYS, VALUE);
    let server = PrismKvServer::new(&config);
    kv_exp::preload_prism(&server, KEYS, VALUE);
    let servers = vec![Arc::clone(server.server())];
    // Four measurement windows of two-sided loss: long enough that an
    // unbounded per-op leak would visibly outrun the drop count.
    let plan = FaultPlan::seeded(seed)
        .with_timeout(SimDuration::micros(60))
        .with_loss(0.10, 0.10);
    let clients = 4u64;
    let r = run_closed_loop(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        clients as usize,
        &mut |i| {
            Box::new(PrismKvAdapter::new(
                server.open_client(),
                YcsbConfig {
                    dist: KeyDist::uniform(KEYS),
                    read_fraction: 0.5,
                    value_len: VALUE,
                },
                SimRng::new(seed ^ ((i as u64 + 1) * 7)),
            ))
        },
        WARMUP,
        SimDuration::from_nanos(4 * 1_200_000),
        seed,
        &plan,
    );
    assert!(r.drops > 0, "loss never bit: {r:?}");
    assert!(r.tput_ops > 0.0, "no progress under long loss: {r:?}");

    let (id, _) = server.view().classes[0];
    let count = config.classes[0].count;
    let (live, _) = server.scrub();
    let available = server.server().freelists().available(id) as u64;
    let leaked = count - live - available;
    // Bounded: at most one buffer per dropped/timed-out reply plus one
    // per client frozen mid-op at the horizon — never "per operation".
    assert!(
        leaked <= r.drops + r.timeouts + clients,
        "leak must be bounded by fault counts, not run length: \
         leaked={leaked} drops={} timeouts={}",
        r.drops,
        r.timeouts
    );

    // Detect-and-repair: the sweep finds exactly the leaked buffers and
    // the pool returns to its no-leak level.
    let reclaimed = server.gc_sweep() as u64;
    assert_eq!(reclaimed, leaked, "gc must reclaim exactly the leak");
    assert_eq!(
        server.server().freelists().available(id) as u64,
        count - live,
        "after gc every buffer is either live in a slot or free"
    );
}

#[test]
fn tx_survives_the_fault_matrix() {
    let seed = seed();
    for mix in MATRIX {
        let mut config = TxConfig::paper(KEYS, VALUE as u64);
        config.spare_buffers += 4_096;
        let cluster = Arc::new(TxCluster::new(1, &config));
        let servers = vec![Arc::clone(cluster.shard(0).server())];
        let r = run_closed_loop(
            &servers,
            &CostModel::testbed(),
            VerbPath::Nic,
            4,
            &mut |i| {
                Box::new(PrismTxAdapter::new(
                    cluster.open_client(),
                    TxnGen::new(
                        KeyDist::uniform(KEYS),
                        1,
                        VALUE,
                        SimRng::new(seed ^ ((i as u64 + 1) * 31)),
                    ),
                ))
            },
            WARMUP,
            MEASURE,
            seed,
            &plan(mix, 0, 0, seed),
        );
        check("tx", mix, &r);
    }
}
