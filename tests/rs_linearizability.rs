//! Linearizability checking for PRISM-RS.
//!
//! Concurrent clients run tagged operations against one register while a
//! recorder collects `(invocation, response, value)` intervals; a
//! Wing-Gong style checker then searches for a legal linearization of
//! the history against a sequential register specification. Also checks
//! crash/recovery schedules and quorum-intersection invariants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use prism_rs::prism_rs::{drive, RsCluster, RsConfig, RsOutcome};

const BLOCK: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read(u8),
    Write(u8),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    start: u64,
    end: u64,
    kind: OpKind,
}

/// Wing-Gong linearizability check for a single register with u8
/// values, initial value 0. Exponential in the worst case; histories
/// here are small (tens of events per register).
fn is_linearizable(history: &[Event]) -> bool {
    fn search(state: u8, done: &mut Vec<bool>, history: &[Event]) -> bool {
        if done.iter().all(|&d| d) {
            return true;
        }
        // An op is a candidate to linearize next if no other un-done op
        // *ended* before it started (i.e. it is minimal in the
        // happens-before order among pending ops).
        let min_end = history
            .iter()
            .enumerate()
            .filter(|(i, _)| !done[*i])
            .map(|(_, e)| e.end)
            .min()
            .expect("pending op exists");
        for i in 0..history.len() {
            if done[i] || history[i].start > min_end {
                continue;
            }
            let e = history[i];
            let next_state = match e.kind {
                OpKind::Read(v) => {
                    if v != state {
                        continue;
                    }
                    state
                }
                OpKind::Write(v) => v,
            };
            done[i] = true;
            if search(next_state, done, history) {
                return true;
            }
            done[i] = false;
        }
        false
    }
    let mut done = vec![false; history.len()];
    search(0, &mut done, history)
}

#[test]
fn checker_accepts_and_rejects_known_histories() {
    // Sequential write(1); read(1): linearizable.
    let ok = vec![
        Event {
            start: 0,
            end: 1,
            kind: OpKind::Write(1),
        },
        Event {
            start: 2,
            end: 3,
            kind: OpKind::Read(1),
        },
    ];
    assert!(is_linearizable(&ok));
    // read(2) with no write(2) anywhere: not linearizable.
    let bad = vec![
        Event {
            start: 0,
            end: 1,
            kind: OpKind::Write(1),
        },
        Event {
            start: 2,
            end: 3,
            kind: OpKind::Read(2),
        },
    ];
    assert!(!is_linearizable(&bad));
    // Stale read after a completed write: not linearizable.
    let stale = vec![
        Event {
            start: 0,
            end: 1,
            kind: OpKind::Write(1),
        },
        Event {
            start: 2,
            end: 3,
            kind: OpKind::Write(2),
        },
        Event {
            start: 4,
            end: 5,
            kind: OpKind::Read(1),
        },
    ];
    assert!(!is_linearizable(&stale));
    // Concurrent write and read may order either way.
    let conc = vec![
        Event {
            start: 0,
            end: 10,
            kind: OpKind::Write(1),
        },
        Event {
            start: 1,
            end: 2,
            kind: OpKind::Read(0),
        },
        Event {
            start: 3,
            end: 4,
            kind: OpKind::Read(1),
        },
    ];
    assert!(is_linearizable(&conc));
}

/// Runs concurrent clients against one PRISM-RS register and verifies
/// the collected history linearizes.
#[test]
fn concurrent_history_is_linearizable() {
    for seed in 0..4u64 {
        let cluster = Arc::new(RsCluster::new(3, &RsConfig::paper(4, BLOCK)));
        let clock = Arc::new(AtomicU64::new(1));
        let history = Arc::new(Mutex::new(Vec::new()));
        let threads: Vec<_> = (0..3u8)
            .map(|t| {
                let cluster = Arc::clone(&cluster);
                let clock = Arc::clone(&clock);
                let history = Arc::clone(&history);
                std::thread::spawn(move || {
                    let client = cluster.open_client();
                    for i in 0..8u8 {
                        let write = (t + i + seed as u8).is_multiple_of(2);
                        let start = clock.fetch_add(1, Ordering::SeqCst);
                        let kind = if write {
                            let v = t * 10 + i + 1;
                            let (op, step) = client.put(0, vec![v; BLOCK as usize]);
                            assert_eq!(
                                drive(&cluster, &client, op, step, &[false; 3]),
                                RsOutcome::Written
                            );
                            OpKind::Write(v)
                        } else {
                            let (op, step) = client.get(0);
                            match drive(&cluster, &client, op, step, &[false; 3]) {
                                RsOutcome::Value(v) => OpKind::Read(v[0]),
                                o => panic!("{o:?}"),
                            }
                        };
                        let end = clock.fetch_add(1, Ordering::SeqCst);
                        history.lock().unwrap().push(Event { start, end, kind });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let history = history.lock().unwrap().clone();
        assert!(
            is_linearizable(&history),
            "seed {seed}: history not linearizable: {history:?}"
        );
    }
}

/// Crash/recovery schedule: values survive any single-replica failure
/// pattern across operations (quorum intersection).
#[test]
fn values_survive_rolling_single_failures() {
    let cluster = RsCluster::new(3, &RsConfig::paper(4, BLOCK));
    let client = cluster.open_client();
    let mut crashed;
    let mut last = vec![0u8; BLOCK as usize];
    for round in 0..12u8 {
        // Rotate which replica is down.
        crashed = [false; 3];
        crashed[(round % 3) as usize] = true;
        // Read must return the last completed write.
        let (op, step) = client.get(1);
        match drive(&cluster, &client, op, step, &crashed) {
            RsOutcome::Value(v) => assert_eq!(v, last, "round {round}"),
            o => panic!("round {round}: {o:?}"),
        }
        // Write a new value through the current majority.
        last = vec![round + 1; BLOCK as usize];
        let (op, step) = client.put(1, last.clone());
        assert_eq!(
            drive(&cluster, &client, op, step, &crashed),
            RsOutcome::Written,
            "round {round}"
        );
    }
}

/// ABD invariant: after any completed write, the tag at a majority of
/// replicas is at least the writer's tag.
#[test]
fn completed_writes_reach_a_majority() {
    let cluster = RsCluster::new(5, &RsConfig::paper(2, BLOCK));
    let client = cluster.open_client();
    for i in 1..=10u64 {
        let (op, step) = client.put(0, vec![i as u8; BLOCK as usize]);
        assert_eq!(
            drive(&cluster, &client, op, step, &[false; 5]),
            RsOutcome::Written
        );
        let with_tag = (0..5)
            .filter(|&r| {
                let v = cluster.replica(r).view().clone();
                let meta = cluster
                    .replica(r)
                    .server()
                    .arena()
                    .read(v.meta(0), 16)
                    .unwrap();
                prism_rs::Tag::from_bytes(&meta[..8]).ts >= i
            })
            .count();
        assert!(with_tag >= 3, "write {i} only reached {with_tag} replicas");
    }
}

/// Tentpole acceptance: a seeded fault plan (message loss, duplication,
/// and a replica crash/restart window) injected under the closed-loop
/// simulation never panics a PRISM-RS client. Every operation either
/// completes through quorum retries or is surfaced as a counted
/// failure, and the run is bit-deterministic: two runs under the same
/// seed produce identical metrics.
#[test]
fn faulted_rs_runs_complete_and_metrics_are_deterministic() {
    use prism_harness::adapters::PrismRsAdapter;
    use prism_harness::netsim::{run_closed_loop, VerbPath};
    use prism_simnet::fault::FaultPlan;
    use prism_simnet::latency::CostModel;
    use prism_simnet::time::{SimDuration, SimTime};
    use prism_workload::KeyDist;

    let seed = std::env::var("PRISM_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9u64);
    let plan = FaultPlan::seeded(seed ^ 0xFA_B71C)
        .with_loss(0.02, 0.01)
        .with_timeout(SimDuration::micros(60))
        .with_crash(
            1,
            SimTime::from_nanos(1_500_000),
            SimTime::from_nanos(2_200_000),
        );
    let run = || {
        // Message loss leaks allocated spare buffers (the chain's free
        // notifications ride the replies), so a faulted run needs the
        // same over-provisioned arena the experiment harness uses.
        let mut config = RsConfig::paper(8, BLOCK);
        config.spare_buffers += 4_096;
        let cluster = RsCluster::new(3, &config);
        let servers: Vec<_> = (0..3)
            .map(|r| Arc::clone(cluster.replica(r).server()))
            .collect();
        run_closed_loop(
            &servers,
            &CostModel::testbed(),
            VerbPath::Nic,
            4,
            &mut |_| {
                Box::new(PrismRsAdapter::new(
                    cluster.open_client(),
                    KeyDist::uniform(8),
                    BLOCK as usize,
                    0.5,
                ))
            },
            SimDuration::millis(1),
            SimDuration::millis(4),
            seed,
            &plan,
        )
    };
    let a = run();
    let b = run();
    assert!(
        a.tput_ops > 0.0,
        "no operation completed under faults: {a:?}"
    );
    assert!(
        a.drops > 0 && a.timeouts > 0 && a.crash_drops > 0,
        "fault plan did not bite: {a:?}"
    );
    assert_eq!(a.tput_ops.to_bits(), b.tput_ops.to_bits());
    assert_eq!(a.mean_us.to_bits(), b.mean_us.to_bits());
    assert_eq!(a.p99_us.to_bits(), b.p99_us.to_bits());
    assert_eq!(
        (
            a.failed,
            a.backoffs,
            a.drops,
            a.dups,
            a.timeouts,
            a.retries,
            a.crash_drops
        ),
        (
            b.failed,
            b.backoffs,
            b.drops,
            b.dups,
            b.timeouts,
            b.retries,
            b.crash_drops
        ),
        "same seed must reproduce identical fault metrics"
    );
}
