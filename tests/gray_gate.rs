//! Gray-failure gate: the fourth CI gate, for faults that degrade
//! without failing cleanly. Seeded straggler windows stretch one
//! server's processing, asymmetric partitions eat only the reply leg,
//! and flapping links cycle up and down — while the tail-tolerance
//! stack (adaptive timeouts from a windowed RTT quantile, hedged reads
//! whose losers are harvested through the stale-reply path, server-side
//! admission control with typed `Busy` NACKs, and deadline-aware retry
//! budgets that shed load) has to turn those gray faults back into
//! bounded tails without ever weakening correctness. The gate demands
//! proof on all three axes: histories stay linearizable under the gray
//! mix (hedged and unhedged), the hedged p99 under one straggling shard
//! stays within a fixed multiple of the healthy baseline and strictly
//! beats the unhedged run, goodput at twice the saturation knee holds
//! within 10% of the knee, and every scenario replays bit-exactly under
//! the same seed.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use prism_core::builder::ops;
use prism_core::integrity::IntegrityStats;
use prism_core::msg::{Reply, Request};
use prism_core::PrismServer;
use prism_harness::chaos::{check_history, ChaosKvAdapter, ChaosRsAdapter, HistOp};
use prism_harness::cluster::{KvCluster, RsShards};
use prism_harness::netsim::{
    run_closed_loop, run_closed_loop_with, AdapterStep, Outbound, ProtoAdapter, RecoveryHooks,
    RunResult, VerbPath,
};
use prism_harness::openloop::{run_open_loop, AdapterFactory, OpenLoopConfig, OpenLoopResult};
use prism_kv::prism_kv::PrismKvConfig;
use prism_rdma::region::AccessFlags;
use prism_rs::prism_rs::RsConfig;
use prism_simnet::fault::{ChaosSpec, FaultPlan, TailPolicy};
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_workload::ArrivalSpec;

/// Per-test seed; `PRISM_TEST_SEED=<n>` perturbs every scenario (each
/// keeps a distinct XOR base) so CI exercises the gate — including its
/// bit-exact-replay assertions — at more than one point.
fn seed_or(base: u64) -> u64 {
    std::env::var("PRISM_TEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|s| s ^ base)
        .unwrap_or(base)
}

const WARMUP: SimDuration = SimDuration::from_nanos(400_000);
const MEASURE: SimDuration = SimDuration::from_nanos(2_400_000);
const HORIZON: SimDuration = SimDuration::from_nanos(2_800_000);
const BLOCKS: u64 = 8;
const VALUE: usize = 64;

fn gray_line(system: &str, r: &RunResult) {
    println!(
        "{system}-gray: tput={:.0}ops/s p99={:.1}us failed={} drops={} timeouts={} \
         retries={} restarts={} slowdowns={} hedges={} wins={} shed={} busy={} stale={}",
        r.tput_ops,
        r.p99_us,
        r.failed,
        r.drops,
        r.timeouts,
        r.retries,
        r.restarts,
        r.slowdown_windows,
        r.hedges,
        r.hedge_wins,
        r.shed,
        r.busy_nacks,
        r.stale_harvested,
    );
}

/// The replay fingerprint: every fault counter, the gray/tail counters
/// included, plus throughput.
fn metrics_key(r: &RunResult) -> [u64; 20] {
    [
        r.tput_ops as u64,
        r.failed,
        r.drops,
        r.dups,
        r.timeouts,
        r.retries,
        r.giveups,
        r.fenced,
        r.epoch_fenced,
        r.stale_harvested,
        r.restarts,
        r.client_restarts,
        r.crash_drops,
        r.slowdown_windows,
        r.hedges,
        r.hedge_wins,
        r.shed,
        r.busy_nacks,
        r.replayed,
        r.delta_resynced,
    ]
}

/// The shared gray fault mix: seeded straggler windows, one reply-leg
/// partition, one flapping link, a crash with amnesia, plus background
/// loss/dup/jitter. Corruption and disk faults stay off — they have
/// their own gates — so every anomaly here is a gray one.
fn gray_spec(servers: usize, clients: usize, crashes: usize, tail: TailPolicy) -> ChaosSpec {
    ChaosSpec {
        servers,
        clients,
        horizon: HORIZON,
        server_crashes: crashes,
        amnesia_fraction: 1.0,
        client_crashes: 1,
        partitions: 1,
        drop_prob: 0.01,
        dup_prob: 0.005,
        jitter_ns: 1_000,
        flip_req_prob: 0.0,
        flip_reply_prob: 0.0,
        torn_write_prob: 0.0,
        disk_torn_prob: 0.0,
        disk_rot_events: 0,
        slowdowns: 2,
        slowdown_factor: 4,
        reply_partitions: 1,
        flaps: 1,
        tail,
    }
}

// ---------------------------------------------------------------------
// Sharded PRISM-KV under the gray mix — hedging disabled
// ---------------------------------------------------------------------

fn kv_gray_chaos(seed: u64) -> (RunResult, Vec<HistOp>) {
    let config = PrismKvConfig::paper(BLOCKS, VALUE);
    let cluster = Arc::new(KvCluster::new(2, &config, seed));
    let servers = cluster.servers();
    let history = Arc::new(Mutex::new(Vec::new()));
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        on_restart: Some({
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i| {
                cluster.amnesia_restart(i);
            })
        }),
        durable: Some(Arc::clone(cluster.durable_stats())),
        integrity: Some(Arc::clone(&integrity)),
        ..RecoveryHooks::default()
    };
    let spec = gray_spec(2, 4, 1, TailPolicy::default());
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(ChaosKvAdapter::sharded(
                (0..2)
                    .map(|s| {
                        cluster
                            .shard(s)
                            .open_client()
                            .with_integrity(Arc::clone(&integrity))
                    })
                    .collect(),
                cluster.map().clone(),
                i,
                BLOCKS,
                VALUE,
                0.5,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    let h = history.lock().expect("history lock").clone();
    (r, h)
}

/// Correctness first, policy off: stragglers, a reply-leg partition, a
/// flapping link, and an amnesia crash — with hedging and shedding
/// disabled — must leave per-key linearizability intact. A server that
/// executed a PUT whose reply vanished on the severed return leg is the
/// canonical gray trap: the client retries, and the history checker
/// must still find one serialization of both attempts.
#[test]
fn kv_sharded_gray_chaos_stays_linearizable() {
    let seed = seed_or(0x64A9_0001);
    let (r, history) = kv_gray_chaos(seed);
    gray_line("kv", &r);
    assert!(r.tput_ops > 0.0, "no progress under the gray mix: {r:?}");
    assert!(
        r.slowdown_windows > 0,
        "the straggler windows were scheduled but never bit: {r:?}"
    );
    assert!(
        r.drops > 0,
        "the reply-leg partition and flap never dropped anything: {r:?}"
    );
    assert!(r.restarts > 0, "no amnesia window fired: {r:?}");
    assert_eq!(r.hedges, 0, "policy off: nothing may hedge");
    assert_eq!(r.shed, 0, "policy off: nothing may shed");
    assert!(!history.is_empty(), "history must be recorded");
    check_history(&history).expect("gray KV history must be linearizable per key");

    let (r2, history2) = kv_gray_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(history, history2, "recorded histories must be bit-exact");
}

// ---------------------------------------------------------------------
// Sharded PRISM-RS under the gray mix — full tail policy armed
// ---------------------------------------------------------------------

fn rs_gray_chaos(seed: u64) -> (RunResult, Vec<HistOp>, u64, u64) {
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    let shards = Arc::new(RsShards::new(2, 3, &config, seed));
    let servers = shards.servers();
    let history = Arc::new(Mutex::new(Vec::new()));
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        on_restart: Some({
            let shards = Arc::clone(&shards);
            Arc::new(move |i| {
                shards.amnesia_restart(i);
            })
        }),
        durable: Some(Arc::clone(shards.durable_stats())),
        integrity: Some(Arc::clone(&integrity)),
        ..RecoveryHooks::default()
    };
    // Hedging + adaptive timeouts armed on top of the same gray mix:
    // quorum GETs hedge after the tracked p99, losers are harvested for
    // their allocations when they straggle in, and the histories those
    // racing copies produce must still pass Wing–Gong.
    let tail = TailPolicy {
        adaptive_timeout: true,
        hedge: true,
        admission_ns: 0,
        retry_deadline: SimDuration::ZERO,
    };
    let spec = gray_spec(6, 6, 2, tail);
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(ChaosRsAdapter::sharded(
                shards
                    .open_clients()
                    .into_iter()
                    .map(|c| c.with_integrity(Arc::clone(&integrity)))
                    .collect(),
                shards.map().clone(),
                i,
                BLOCKS,
                VALUE,
                0.5,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    let h = history.lock().expect("history lock").clone();
    (r, h, shards.rejoins(), shards.resyncs())
}

/// The hedged-correctness gate: the same gray mix over a 2-group RS
/// cluster with hedged quorum reads and adaptive timeouts armed. Racing
/// hedge copies must not manufacture anomalies — every losing copy
/// lands in the stale-reply harvest (no buffer leaks), and the
/// cross-group history stays linearizable.
#[test]
fn rs_sharded_gray_chaos_stays_linearizable_with_hedging() {
    let seed = seed_or(0x64A9_0002);
    let (r, history, rejoins, _resyncs) = rs_gray_chaos(seed);
    gray_line("rs", &r);
    assert!(r.tput_ops > 0.0, "no progress under the gray mix: {r:?}");
    assert!(
        r.slowdown_windows > 0,
        "the straggler windows were scheduled but never bit: {r:?}"
    );
    assert!(r.restarts > 0, "no amnesia window fired: {r:?}");
    assert!(
        rejoins > 0,
        "restarted replicas must rejoin (rejoins={rejoins})"
    );
    assert!(
        r.hedges > 0,
        "hedging was armed under stragglers but never fired: {r:?}"
    );
    assert!(!history.is_empty(), "history must be recorded");
    check_history(&history).expect("hedged gray RS history must be linearizable");

    let (r2, history2, rejoins2, _) = rs_gray_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(history, history2, "recorded histories must be bit-exact");
    assert_eq!(rejoins, rejoins2);
}

// ---------------------------------------------------------------------
// Hedged tail under one straggling shard
// ---------------------------------------------------------------------

/// One run of the two-shard KV tail experiment. `slow` stretches shard
/// 1's processing by 4x for the whole horizon; `tail` arms the client
/// policy. Background loss is what gives hedging its opening: a GET
/// whose request or reply vanished toward the slow shard either waits
/// out the full fixed timeout (unhedged) or is covered by a copy issued
/// after the tracked p99 (hedged).
fn tail_run(seed: u64, slow: bool, tail: TailPolicy) -> (RunResult, Vec<HistOp>) {
    let config = PrismKvConfig::paper(BLOCKS, VALUE);
    let cluster = Arc::new(KvCluster::new(2, &config, seed));
    let servers = cluster.servers();
    let history = Arc::new(Mutex::new(Vec::new()));
    // Jitter matters: without it a primary that will arrive always
    // beats the hedge delay, so hedges would only ever cover drops and
    // no losing copy would ever straggle home to be harvested.
    let mut plan = FaultPlan::seeded(seed)
        .with_loss(0.05, 0.0)
        .with_jitter(8_000)
        .with_tail_policy(tail);
    if slow {
        plan = plan.with_slowdown(1, SimTime::ZERO, SimTime::ZERO + HORIZON, 4);
    }
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        4,
        &mut |i| {
            Box::new(ChaosKvAdapter::sharded(
                (0..2).map(|s| cluster.shard(s).open_client()).collect(),
                cluster.map().clone(),
                i,
                BLOCKS,
                VALUE,
                0.0,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
    );
    let h = history.lock().expect("history lock").clone();
    (r, h)
}

/// The tail-tolerance regression of record: with one shard straggling
/// at 4x, the hedged p99 must stay within a fixed multiple of the
/// healthy (no-straggler) baseline and strictly beat the unhedged run,
/// whose tail is pinned to the fixed timeout. Both comparisons use the
/// same seed, loss rate, and workload; only the straggler window and
/// the tail policy differ.
#[test]
fn hedged_p99_under_one_straggling_shard_stays_bounded() {
    let seed = seed_or(0x64A9_0003);
    let policy = TailPolicy {
        adaptive_timeout: true,
        hedge: true,
        admission_ns: 0,
        retry_deadline: SimDuration::ZERO,
    };
    let (healthy, _) = tail_run(seed, false, policy.clone());
    let (unhedged, _) = tail_run(seed, true, TailPolicy::default());
    let (hedged, hist) = tail_run(seed, true, policy.clone());
    gray_line("tail-healthy", &healthy);
    gray_line("tail-unhedged", &unhedged);
    gray_line("tail-hedged", &hedged);
    assert!(healthy.p99_us > 0.0 && hedged.p99_us > 0.0 && unhedged.p99_us > 0.0);
    assert!(
        hedged.slowdown_windows > 0,
        "the straggling shard never stretched a request: {hedged:?}"
    );
    assert!(hedged.hedges > 0, "no hedge fired: {hedged:?}");
    assert!(
        hedged.hedge_wins > 0,
        "no hedge copy ever beat its primary: {hedged:?}"
    );
    assert!(
        hedged.p99_us < unhedged.p99_us,
        "hedged p99 {:.1}us must strictly beat unhedged {:.1}us",
        hedged.p99_us,
        unhedged.p99_us
    );
    // The fixed-multiple bound: a 4x straggler on half the keyspace may
    // cost a few healthy p99s (the hedge itself waits one tracked p99,
    // and slow-shard service is honestly 4x) but must not degenerate to
    // the timeout-dominated unhedged tail.
    assert!(
        hedged.p99_us <= 8.0 * healthy.p99_us,
        "hedged p99 {:.1}us exceeds 8x the healthy baseline {:.1}us",
        hedged.p99_us,
        healthy.p99_us
    );
    // Hedge losers must be harvested, not leaked: every copy that lost
    // its race straggles in later and takes the stale-reply path.
    assert!(
        hedged.stale_harvested > 0,
        "losing hedge copies must be harvested: {hedged:?}"
    );
    check_history(&hist).expect("hedged straggler history must be linearizable");

    let (hedged2, hist2) = tail_run(seed, true, policy);
    assert_eq!(
        metrics_key(&hedged),
        metrics_key(&hedged2),
        "replay must be bit-exact"
    );
    assert_eq!(hist, hist2, "recorded histories must be bit-exact");
}

// ---------------------------------------------------------------------
// Overload shedding: goodput holds at twice the knee
// ---------------------------------------------------------------------

/// One chain READ per operation, retried on any error until it lands —
/// the minimal open-loop workload with a real service-center footprint.
struct RetryingRead {
    addr: u64,
    rkey: u32,
}

impl ProtoAdapter for RetryingRead {
    fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
        self.resume()
    }

    fn resume(&mut self) -> Vec<Outbound> {
        vec![Outbound {
            server: 0,
            tag: 0,
            req: Request::Chain(vec![ops::read(self.addr, 512, self.rkey)]),
            background: false,
            epoch: 0,
        }]
    }

    fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
        match reply {
            Reply::Chain(_) => AdapterStep::Done {
                sends: Vec::new(),
                client_compute: SimDuration::ZERO,
                failed: false,
            },
            _ => AdapterStep::Retry {
                sends: Vec::new(),
                wait: SimDuration::micros(5),
            },
        }
    }
}

/// Two dispatch cores at 500 ns per chain op put the saturation knee at
/// 4M ops/s — low enough to drive past within a 2 ms window.
const KNEE_RATE: f64 = 4.0e6;

fn knee_run(seed: u64, rate: f64, tail: TailPolicy) -> OpenLoopResult {
    let s = Arc::new(PrismServer::new(1 << 20));
    let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
    let rkey = rkey.0;
    // The 1% background loss arms the fault layer so fixed timeouts are
    // live in the unprotected contrast run.
    let mut faults = FaultPlan::seeded(seed)
        .with_loss(0.01, 0.0)
        .with_tail_policy(tail);
    faults.timeout = SimDuration::micros(60);
    let cfg = OpenLoopConfig {
        arrivals: ArrivalSpec::Poisson { rate_per_sec: rate },
        logical_clients: 256,
        max_inflight: 0,
        actors: 4,
        warmup: SimDuration::micros(200),
        measure: SimDuration::millis(2),
        seed,
        faults,
    };
    let factory: AdapterFactory = Rc::new(RefCell::new(move |_i: usize| {
        Box::new(RetryingRead { addr, rkey }) as Box<dyn ProtoAdapter>
    }));
    let mut model = CostModel::testbed();
    model.server_cores = 2;
    run_open_loop(
        &[s],
        &model,
        VerbPath::Nic,
        &cfg,
        factory,
        &RecoveryHooks::default(),
    )
}

/// The overload-protection regression: at twice the saturation knee,
/// bounded admission (`Busy` NACKs past a 20 µs queue bound) plus
/// deadline-aware shedding must hold goodput within 10% of the knee
/// goodput, where the unprotected stack collapses into a timeout-retry
/// storm (every queued request blows its fixed 60 µs timeout, retries
/// double the offered load, and the server burns capacity on duplicate
/// executions).
#[test]
fn admission_and_shedding_hold_goodput_past_the_knee() {
    let seed = seed_or(0x64A9_0004);
    let protection = TailPolicy {
        adaptive_timeout: true,
        hedge: false,
        admission_ns: 20_000,
        retry_deadline: SimDuration::micros(200),
    };
    let knee = knee_run(seed, KNEE_RATE, protection.clone());
    let plain_2x = knee_run(seed, 2.0 * KNEE_RATE, TailPolicy::default());
    let prot_2x = knee_run(seed, 2.0 * KNEE_RATE, protection.clone());
    println!(
        "overload: knee={:.0}ops/s | 2x plain={:.0}ops/s (to={}) | \
         2x protected={:.0}ops/s shed={} busy={}",
        knee.tput_ops,
        plain_2x.tput_ops,
        plain_2x.timeouts,
        prot_2x.tput_ops,
        prot_2x.shed,
        prot_2x.busy_nacks
    );
    assert!(knee.tput_ops > 0.0, "no progress at the knee");
    assert!(
        prot_2x.busy_nacks > 0,
        "admission control never refused anything at 2x overload: {prot_2x:?}"
    );
    assert!(
        prot_2x.shed > 0,
        "the deadline budget never shed at 2x overload: {prot_2x:?}"
    );
    assert!(
        prot_2x.tput_ops >= 0.9 * knee.tput_ops,
        "protected goodput at 2x past the knee ({:.0}) fell more than 10% \
         below the knee goodput ({:.0})",
        prot_2x.tput_ops,
        knee.tput_ops
    );
    assert!(
        prot_2x.tput_ops > 1.5 * plain_2x.tput_ops,
        "the protected stack ({:.0}) must clearly beat the unprotected \
         collapse ({:.0}) at 2x overload",
        prot_2x.tput_ops,
        plain_2x.tput_ops
    );

    // Same seed, fresh servers: the protected overload run — sheds,
    // NACKs, quantile state and all — replays bit-exactly.
    let again = knee_run(seed, 2.0 * KNEE_RATE, protection);
    assert_eq!(prot_2x, again, "replay must be bit-exact");
}

// ---------------------------------------------------------------------
// Zero-knob bit-identity against the pre-gray baseline
// ---------------------------------------------------------------------

/// Gray faults live on their own RNG streams (the PR 3/5/9 convention),
/// so a plan with every gray knob at zero and the tail policy off must
/// replay the exact schedule the pre-gray code produced. The golden
/// values below are the f64 bit patterns and counters of this fixed
/// scenario captured on the commit *before* the gray fault class
/// landed; if adding a knob ever perturbs knob-free runs, this pins the
/// divergence to the byte. (Golden values hold for the default seed
/// only — `PRISM_TEST_SEED` runs still assert same-build determinism.)
#[test]
fn zero_knob_plans_are_bit_identical_to_the_pre_gray_baseline() {
    let seed = seed_or(0x64A9_0005);
    let run = |seed: u64| {
        let s = Arc::new(PrismServer::new(1 << 20));
        let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
        let rkey = rkey.0;
        let mut plan = FaultPlan::seeded(seed).with_loss(0.02, 0.01);
        plan.timeout = SimDuration::micros(60);
        run_closed_loop(
            &[s],
            &CostModel::testbed(),
            VerbPath::Nic,
            4,
            &mut |_i| Box::new(RetryingRead { addr, rkey }),
            SimDuration::micros(200),
            SimDuration::from_nanos(1_200_000),
            seed,
            &plan,
        )
    };
    let r = run(seed);
    let key = [
        r.tput_ops.to_bits(),
        r.mean_us.to_bits(),
        r.p99_us.to_bits(),
        r.failed,
        r.drops,
        r.dups,
        r.timeouts,
        r.retries,
        r.giveups,
    ];
    assert_eq!(r.hedges + r.shed + r.busy_nacks + r.slowdown_windows, 0);
    if seed == 0x64A9_0005 {
        assert_eq!(
            key,
            [
                0x411b_7740_0000_0000,
                0x4021_0d72_18aa_c1f8,
                0x4052_4dd2_f1a9_fbe7,
                0,
                27,
                4,
                26,
                26,
                0,
            ],
            "a zero-knob plan diverged from the pre-gray golden schedule"
        );
    }
    let r2 = run(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
}
