//! Serializability checking for PRISM-TX (and FaRM, as a sanity
//! baseline): committed transactions carry version observations whose
//! dependency graph must be acyclic, plus whole-history invariants.

use std::sync::{Arc, Mutex};

use prism_tx::farm;
use prism_tx::prism_tx::{drive, run_rmw, TxCluster, TxConfig, TxOutcome};

const VALUE: u64 = 32;

fn enc(n: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE as usize];
    v[0..8].copy_from_slice(&n.to_le_bytes());
    v
}

fn dec(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[0..8].try_into().unwrap())
}

/// Each committed transaction records, per key, the counter value it
/// read and the value it wrote (read + 1). If the final counter equals
/// the number of committed increments and every read value was some
/// previous write, the history serializes as a simple chain.
#[test]
fn prism_tx_counter_chain_is_gapless() {
    let cluster = Arc::new(TxCluster::new(2, &TxConfig::paper(8, VALUE)));
    let observations: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            let observations = Arc::clone(&observations);
            std::thread::spawn(move || {
                let mut client = cluster.open_client();
                for _ in 0..50 {
                    let (o, _) = run_rmw(
                        &cluster,
                        &mut client,
                        &[5],
                        |_, vals| enc(dec(&vals[&5]) + 1),
                        100_000,
                    );
                    match o {
                        TxOutcome::Committed(vals) => {
                            observations.lock().unwrap().push(dec(&vals[&5]));
                        }
                        other => panic!("{other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // 200 committed increments: the observed read values must be exactly
    // 0..=199 in some order — any duplicate means two transactions read
    // the same version (a lost update); any gap means a phantom version.
    let mut obs = observations.lock().unwrap().clone();
    obs.sort_unstable();
    let expected: Vec<u64> = (0..200).collect();
    assert_eq!(obs, expected, "increment chain has gaps or duplicates");
    // And the final value is 200.
    let mut client = cluster.open_client();
    let (op, step) = client.begin(vec![5], vec![]);
    match drive(&cluster, &mut client, op, step) {
        TxOutcome::Committed(vals) => assert_eq!(dec(&vals[&5]), 200),
        o => panic!("{o:?}"),
    }
}

/// Snapshot consistency across keys: writers keep `a + b` constant;
/// read-only transactions must never observe a broken invariant.
#[test]
fn prism_tx_readers_see_consistent_snapshots() {
    let cluster = Arc::new(TxCluster::new(2, &TxConfig::paper(8, VALUE)));
    {
        let mut c = cluster.open_client();
        for (k, v) in [(0u64, 500u64), (1, 500)] {
            let (op, step) = c.begin(vec![], vec![(k, enc(v))]);
            assert!(matches!(
                drive(&cluster, &mut c, op, step),
                TxOutcome::Committed(_)
            ));
        }
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..2u64)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = cluster.open_client();
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let delta = 1 + (i + t) % 7;
                    let _ = run_rmw(
                        &cluster,
                        &mut client,
                        &[0, 1],
                        move |k, vals| {
                            let a = dec(&vals[&0]);
                            let b = dec(&vals[&1]);
                            let (na, nb) = if a >= delta {
                                (a - delta, b + delta)
                            } else {
                                (a, b)
                            };
                            enc(if k == 0 { na } else { nb })
                        },
                        1_000,
                    );
                    i += 1;
                }
            })
        })
        .collect();
    let mut client = cluster.open_client();
    let mut checked = 0;
    while checked < 300 {
        let (op, step) = client.begin(vec![0, 1], vec![]);
        match drive(&cluster, &mut client, op, step) {
            TxOutcome::Committed(vals) => {
                let total = dec(&vals[&0]) + dec(&vals[&1]);
                assert_eq!(total, 1000, "reader saw a torn snapshot");
                checked += 1;
            }
            TxOutcome::Aborted => {}
            o => panic!("{o:?}"),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for t in writers {
        t.join().unwrap();
    }
}

/// The same gapless-counter property must hold for the FaRM baseline —
/// if it doesn't, figure comparisons would be comparing against a
/// broken implementation.
#[test]
fn farm_counter_chain_is_gapless() {
    let cluster = Arc::new(farm::FarmCluster::new(
        2,
        &farm::FarmConfig {
            keys_per_shard: 8,
            value_len: VALUE,
        },
    ));
    let observations: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            let observations = Arc::clone(&observations);
            std::thread::spawn(move || {
                let mut client = cluster.open_client();
                for _ in 0..50 {
                    let (o, _) = farm::run_rmw(
                        &cluster,
                        &mut client,
                        &[5],
                        |_, vals| enc(dec(&vals[&5]) + 1),
                        100_000,
                    );
                    match o {
                        farm::FarmOutcome::Committed(vals) => {
                            observations.lock().unwrap().push(dec(&vals[&5]));
                        }
                        other => panic!("{other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut obs = observations.lock().unwrap().clone();
    obs.sort_unstable();
    assert_eq!(obs, (0..200).collect::<Vec<u64>>());
}

/// Write-skew shape: two transactions each read both keys and write one.
/// Under serializability at most one of a conflicting pair commits on
/// stale reads; the invariant `a + b <= 10` (enforced in the write
/// logic from the values read) must hold at quiescence.
#[test]
fn prism_tx_prevents_write_skew() {
    let cluster = Arc::new(TxCluster::new(1, &TxConfig::paper(4, VALUE)));
    // a = b = 0 initially; each txn wants to set its key to 10 - (a+b),
    // keeping a + b <= 10 *if reads are consistent*. Write skew (both
    // reading 0,0 and both writing 10) would give a + b = 20.
    let threads: Vec<_> = (0..2u64)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut client = cluster.open_client();
                let my_key = t; // 0 or 1
                for _ in 0..50 {
                    let _ = run_rmw(
                        &cluster,
                        &mut client,
                        &[0, 1],
                        move |k, vals| {
                            let a = dec(&vals[&0]);
                            let b = dec(&vals[&1]);
                            if k == my_key {
                                let headroom = 10u64.saturating_sub(a + b);
                                enc(dec(&vals[&k]).min(10) + headroom.min(1))
                            } else {
                                enc(dec(&vals[&k]))
                            }
                        },
                        10_000,
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut client = cluster.open_client();
    let (op, step) = client.begin(vec![0, 1], vec![]);
    match drive(&cluster, &mut client, op, step) {
        TxOutcome::Committed(vals) => {
            let total = dec(&vals[&0]) + dec(&vals[&1]);
            assert!(total <= 10, "write skew: a + b = {total}");
        }
        o => panic!("{o:?}"),
    }
}

/// Tentpole acceptance: a seeded fault plan (message loss, duplication,
/// and a shard crash/restart window) injected under the closed-loop
/// simulation never panics a PRISM-TX client. Lost exec/prepare replies
/// surface as aborts (retried with backoff), lost commit replies as
/// counted indeterminate failures, and two runs under the same seed
/// produce identical metrics.
#[test]
fn faulted_tx_runs_complete_and_metrics_are_deterministic() {
    use prism_harness::adapters::PrismTxAdapter;
    use prism_harness::netsim::{run_closed_loop, VerbPath};
    use prism_simnet::fault::FaultPlan;
    use prism_simnet::latency::CostModel;
    use prism_simnet::rng::SimRng;
    use prism_simnet::time::{SimDuration, SimTime};
    use prism_tx::prism_tx::TxConfig;
    use prism_workload::{KeyDist, TxnGen};

    let seed = std::env::var("PRISM_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(13u64);
    let plan = FaultPlan::seeded(seed ^ 0x7A_B71C)
        .with_loss(0.02, 0.01)
        .with_timeout(SimDuration::micros(60))
        .with_crash(
            0,
            SimTime::from_nanos(1_500_000),
            SimTime::from_nanos(2_200_000),
        );
    let run = || {
        // Lost replies leak spare buffers (free notifications ride the
        // replies), so the faulted run gets an over-provisioned arena,
        // as the experiment harness does.
        let mut config = TxConfig::paper(64, VALUE);
        config.spare_buffers += 4_096;
        let cluster = Arc::new(TxCluster::new(1, &config));
        let servers = vec![Arc::clone(cluster.shard(0).server())];
        run_closed_loop(
            &servers,
            &CostModel::testbed(),
            VerbPath::Nic,
            4,
            &mut |i| {
                Box::new(PrismTxAdapter::new(
                    cluster.open_client(),
                    TxnGen::new(
                        KeyDist::uniform(64),
                        1,
                        VALUE as usize,
                        SimRng::new(seed ^ ((i as u64 + 1) * 31)),
                    ),
                ))
            },
            SimDuration::millis(1),
            SimDuration::millis(4),
            seed,
            &plan,
        )
    };
    let a = run();
    let b = run();
    assert!(
        a.tput_ops > 0.0,
        "no transaction committed under faults: {a:?}"
    );
    assert!(
        a.drops > 0 && a.timeouts > 0 && a.crash_drops > 0,
        "fault plan did not bite: {a:?}"
    );
    assert_eq!(a.tput_ops.to_bits(), b.tput_ops.to_bits());
    assert_eq!(a.mean_us.to_bits(), b.mean_us.to_bits());
    assert_eq!(a.p99_us.to_bits(), b.p99_us.to_bits());
    assert_eq!(
        (
            a.failed,
            a.backoffs,
            a.drops,
            a.dups,
            a.timeouts,
            a.retries,
            a.crash_drops
        ),
        (
            b.failed,
            b.backoffs,
            b.drops,
            b.dups,
            b.timeouts,
            b.retries,
            b.crash_drops
        ),
        "same seed must reproduce identical fault metrics"
    );
}
