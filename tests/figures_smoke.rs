//! Smoke tests for the figure harness: each experiment runs at quick
//! scale and the paper's headline inequality for that figure must hold.
//! (The full-scale runs are `cargo run --release -p prism-harness --bin
//! all_figures`; results are recorded in EXPERIMENTS.md.)
//!
//! The quick configs are wall-clock bounded: every `quick()` reads its
//! measurement window through `prism_harness::smoke`, so
//! `PRISM_SMOKE_MEASURE_US=<us>` shrinks (or grows) the whole suite at
//! once. The budget test below keeps the default scale honest.

use prism_harness::{kv_exp, micro, rs_exp, tx_exp};

fn col(table: &prism_harness::table::Table, system: &str, col: usize) -> Vec<f64> {
    table
        .to_csv()
        .lines()
        .skip(1)
        .filter_map(|l| {
            let c: Vec<&str> = l.split(',').collect();
            (c[0] == system).then(|| c[col].parse().unwrap())
        })
        .collect()
}

#[test]
fn figure1_and_2_render() {
    let f1 = micro::figure1().render();
    assert!(f1.contains("Indirect Read") && f1.contains("PRISM SW"));
    let f2 = micro::figure2().render();
    assert!(f2.contains("datacenter"));
    let s2 = micro::section2().render();
    assert!(s2.contains("eRPC"));
}

#[test]
fn figure3_headline_prism_kv_wins_reads() {
    let cfg = kv_exp::KvExpConfig::quick(1.0);
    let (t, peaks) = kv_exp::run(&cfg);
    // Headline: PRISM-KV reads at lower latency and higher peak
    // throughput than Pilaf (§6.2, "22% higher read throughput").
    assert!(peaks[0] > peaks[1]);
    let prism_lat = col(&t, "PRISM-KV", 3)[0];
    let pilaf_lat = col(&t, "Pilaf", 3)[0];
    assert!(prism_lat < pilaf_lat);
}

#[test]
fn figure4_headline_mixed_workload_competitive() {
    let cfg = kv_exp::KvExpConfig::quick(0.5);
    let (_t, peaks) = kv_exp::run(&cfg);
    // §6.2: PRISM-KV "matches" Pilaf for 50/50 mixed workloads (PUTs
    // cost 2 round trips against Pilaf's single RPC), so the assertion
    // is parity within 2x — not strict ordering.
    assert!(
        peaks[0] > 0.5 * peaks[1],
        "PRISM {} vs Pilaf {}",
        peaks[0],
        peaks[1]
    );
    assert!(
        peaks[0] > 0.5 * peaks[2],
        "PRISM {} vs Pilaf-sw {}",
        peaks[0],
        peaks[2]
    );
}

#[test]
fn figure6_headline_prism_rs_wins() {
    let cfg = rs_exp::RsExpConfig::quick();
    let (t, peaks) = rs_exp::figure6(&cfg);
    // The paper's headline — PRISM-RS beats both baselines — holds at
    // any measurement window. The ordering *between* the baselines is a
    // sub-0.2% effect that only resolves at the full 4 ms quick window,
    // so it is skipped when PRISM_SMOKE_MEASURE_US shrinks the run.
    assert!(peaks[0] > peaks[1] && peaks[0] > peaks[2]);
    if cfg.measure >= prism_simnet::time::SimDuration::millis(4) {
        assert!(peaks[1] > peaks[2], "ABDLOCK must beat the ABD baseline");
    }
    let prism_lat = col(&t, "PRISM-RS", 3)[0];
    let abd_lat = col(&t, "ABDLOCK", 3)[0];
    assert!(
        prism_lat < abd_lat,
        "PRISM-RS {prism_lat} vs ABDLOCK {abd_lat}"
    );
}

#[test]
fn figure7_headline_contention_immunity() {
    let cfg = rs_exp::RsExpConfig::quick();
    let t = rs_exp::figure7(&cfg);
    let prism = col(&t, "PRISM-RS", 3);
    let abd = col(&t, "ABDLOCK", 3);
    let prism_growth = prism.last().unwrap() / prism[0];
    let abd_growth = abd.last().unwrap() / abd[0];
    assert!(
        abd_growth > prism_growth,
        "ABDLOCK must degrade more under skew"
    );
}

#[test]
fn figure9_headline_prism_tx_wins() {
    let cfg = tx_exp::TxExpConfig::quick();
    let (t, peaks) = tx_exp::figure9(&cfg);
    assert!(
        peaks[0] > peaks[1],
        "PRISM-TX {} vs FaRM {}",
        peaks[0],
        peaks[1]
    );
    let prism_lat = col(&t, "PRISM-TX", 3)[0];
    let farm_lat = col(&t, "FaRM", 3)[0];
    assert!(prism_lat < farm_lat);
}

#[test]
fn figure10_headline_advantage_survives_skew() {
    let cfg = tx_exp::TxExpConfig::quick();
    let t = tx_exp::figure10(&cfg);
    let prism = col(&t, "PRISM-TX", 2);
    let farm = col(&t, "FaRM", 2);
    // Uncontended: strict ordering. Under skew: at least competitive —
    // see EXPERIMENTS.md's Figure 10 discussion of the software-PRISM
    // dispatch-core asymmetry under extreme contention.
    assert!(
        prism[0] > farm[0],
        "uncontended: PRISM {} vs FaRM {}",
        prism[0],
        farm[0]
    );
    for (i, (p, f)) in prism.iter().zip(farm.iter()).enumerate() {
        assert!(*p >= 0.75 * f, "zipf point {i}: PRISM {p} vs FaRM {f}");
    }
}

/// The quick configs must stay smoke-test sized: one full KV experiment
/// (the heaviest single figure here) finishes in seconds, keeping the
/// whole suite well under a minute even on a loaded machine. If this
/// trips, a quick() config grew past smoke scale — shrink it or move
/// the heavy variant to the paper() config.
#[test]
fn quick_configs_fit_the_smoke_budget() {
    let start = std::time::Instant::now();
    let cfg = kv_exp::KvExpConfig::quick(1.0);
    let _ = kv_exp::run(&cfg);
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "quick KV experiment took {elapsed:?}; smoke scale has drifted"
    );
}
