//! Open-loop engine gate: the coordinated-omission regression and the
//! fixed-seed determinism smoke that `scripts/ci.sh` runs at two seeds.
//!
//! The coordinated-omission test is the reason the open-loop engine
//! exists: stall a server mid-window and the closed-loop driver's tail
//! barely moves (each blocked client simply stops *offering* the
//! requests whose latencies would have recorded the stall), while the
//! open-loop driver — whose arrival instants are fixed in advance and
//! whose latencies are measured from those intended instants — charges
//! the full stall to every request that arrived during it.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use prism_core::builder::ops;
use prism_core::msg::{Reply, Request};
use prism_core::PrismServer;
use prism_harness::kv_exp::{self, KvExpConfig};
use prism_harness::netsim::{
    run_closed_loop, AdapterStep, Outbound, ProtoAdapter, RecoveryHooks, VerbPath,
};
use prism_harness::openloop::{run_open_loop, AdapterFactory, OpenLoopConfig, OpenLoopKnobs};
use prism_rdma::region::AccessFlags;
use prism_simnet::fault::{CrashMode, CrashWindow, FaultPlan};
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_workload::ArrivalSpec;

/// CI seed override, as in the fault matrix and chaos gate.
fn seed() -> u64 {
    std::env::var("PRISM_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// One chain READ per operation, retrying on any error until it lands —
/// so an operation that spans a server stall completes *after* it and
/// carries the stall in its latency, under both drivers.
struct RetryingRead {
    addr: u64,
    rkey: u32,
}

impl ProtoAdapter for RetryingRead {
    fn start(&mut self, _rng: &mut SimRng) -> Vec<Outbound> {
        self.resume()
    }

    fn resume(&mut self) -> Vec<Outbound> {
        vec![Outbound {
            server: 0,
            tag: 0,
            req: Request::Chain(vec![ops::read(self.addr, 512, self.rkey)]),
            background: false,
            epoch: 0,
        }]
    }

    fn on_reply(&mut self, _tag: u64, reply: Reply) -> AdapterStep {
        match reply {
            Reply::Chain(_) => AdapterStep::Done {
                sends: Vec::new(),
                client_compute: SimDuration::ZERO,
                failed: false,
            },
            _ => AdapterStep::Retry {
                sends: Vec::new(),
                wait: SimDuration::micros(5),
            },
        }
    }
}

fn stall_server() -> (Arc<PrismServer>, u64, u32) {
    let s = Arc::new(PrismServer::new(1 << 20));
    let (addr, rkey) = s.carve_region(4096, 64, AccessFlags::FULL);
    (s, addr, rkey.0)
}

/// A 400 µs fail-recover outage in the middle of a 2 ms measurement
/// window, with a short client timeout so blocked requests keep
/// retrying into the wall.
fn stall_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        timeout: SimDuration::micros(25),
        crashes: vec![CrashWindow {
            server: 0,
            from: SimTime::from_nanos(700_000),
            until: SimTime::from_nanos(1_100_000),
            mode: CrashMode::Recover,
        }],
        ..FaultPlan::default()
    }
}

const WARMUP: SimDuration = SimDuration::micros(200);
const MEASURE: SimDuration = SimDuration::millis(2);

/// The regression itself: same server, same stall, same retrying
/// adapter; the closed-loop p99 stays near the unloaded RTT while the
/// open-loop p99 is dominated by the stall. If this ratio collapses,
/// the engine has started measuring from operation start instead of
/// intended arrival (or arrivals have become coupled to service times)
/// — coordinated omission reintroduced.
#[test]
fn stalled_server_inflates_open_loop_p99_far_beyond_closed_loop() {
    let seed = seed();
    let model = CostModel::testbed();
    let faults = stall_plan(seed);

    let (s, addr, rkey) = stall_server();
    let closed = run_closed_loop(
        &[Arc::clone(&s)],
        &model,
        VerbPath::Nic,
        16,
        &mut |_| Box::new(RetryingRead { addr, rkey }),
        WARMUP,
        MEASURE,
        seed,
        &faults,
    );

    let (s, addr, rkey) = stall_server();
    let factory: AdapterFactory = Rc::new(RefCell::new(move |_i: usize| {
        Box::new(RetryingRead { addr, rkey }) as Box<dyn ProtoAdapter>
    }));
    let cfg = OpenLoopConfig {
        arrivals: ArrivalSpec::Poisson {
            rate_per_sec: 500_000.0,
        },
        logical_clients: 1_024,
        max_inflight: 0,
        actors: 4,
        warmup: WARMUP,
        measure: MEASURE,
        seed,
        faults,
    };
    let open = run_open_loop(
        &[s],
        &model,
        VerbPath::Nic,
        &cfg,
        factory,
        &RecoveryHooks::default(),
    );

    assert!(closed.p99_us > 0.0, "closed-loop run produced no samples");
    assert!(open.completed > 0, "open-loop run produced no samples");
    // ~20 % of the window's arrivals land inside the stall, so the
    // open-loop p99 is on the order of the 400 µs outage; the
    // closed-loop p99 sees at most 16 stall-spanning samples out of
    // hundreds and stays near the unloaded RTT.
    assert!(
        closed.p99_us < 100.0,
        "closed-loop p99 {} µs unexpectedly saw the stall",
        closed.p99_us
    );
    assert!(
        open.p99_us > 100.0,
        "open-loop p99 {} µs failed to record the stall",
        open.p99_us
    );
    assert!(
        open.p99_us > 10.0 * closed.p99_us,
        "open-loop p99 {} µs vs closed-loop {} µs: coordinated omission regression",
        open.p99_us,
        closed.p99_us
    );
}

/// Fixed-seed smoke over the real PRISM-KV system: nonzero completions
/// at every swept rate, and the whole sweep — every counter and every
/// quantile — replays bit-exactly. CI runs this at the default seed and
/// again under `PRISM_TEST_SEED=1806242025`.
#[test]
fn kv_open_loop_sweep_replays_bit_exactly() {
    let mut cfg = KvExpConfig::quick(1.0);
    cfg.seed ^= seed();
    let knobs = OpenLoopKnobs::quick();
    let (_t, a) = kv_exp::open_loop(&cfg, &knobs);
    let (_t, b) = kv_exp::open_loop(&cfg, &knobs);
    assert_eq!(a, b, "same seed must replay the sweep bit-exactly");
    for (rate, r) in &a {
        assert!(r.completed > 0, "no completions at {rate} ops/s");
    }
}

/// Trace-driven arrivals are deterministic by construction: a burst
/// trace replayed through the engine completes exactly the trace's
/// arrival count (no arrival lost to striping or slot recycling), twice
/// over.
#[test]
fn trace_replay_completes_every_arrival() {
    let (s, addr, rkey) = stall_server();
    let model = CostModel::testbed();
    // 300 arrivals: a 3 µs-spaced ramp, then a 100-wide instantaneous
    // burst (gap 0), then sparse stragglers — all inside the window.
    let mut gaps = vec![3_000u64; 100];
    gaps.extend(std::iter::repeat_n(0, 100));
    gaps.extend(std::iter::repeat_n(10_000, 100));
    let cfg = OpenLoopConfig {
        arrivals: ArrivalSpec::Trace { gaps },
        logical_clients: 64,
        max_inflight: 0,
        actors: 4,
        warmup: SimDuration::ZERO,
        measure: SimDuration::millis(5),
        seed: seed(),
        faults: FaultPlan::default(),
    };
    let factory: AdapterFactory = Rc::new(RefCell::new(move |_i: usize| {
        Box::new(RetryingRead { addr, rkey }) as Box<dyn ProtoAdapter>
    }));
    let a = run_open_loop(
        &[Arc::clone(&s)],
        &model,
        VerbPath::Nic,
        &cfg,
        Rc::clone(&factory),
        &RecoveryHooks::default(),
    );
    assert_eq!(a.completed, 300, "every trace arrival must complete");
    assert!(
        a.backlogged > 0,
        "the 100-wide burst must overflow 64 slots into the backlog"
    );
    let b = run_open_loop(
        &[s],
        &model,
        VerbPath::Nic,
        &cfg,
        factory,
        &RecoveryHooks::default(),
    );
    assert_eq!(a, b, "trace replay must be bit-exact");
}

/// The connection-recycling contract behind [`sweep_rates`]: one system
/// serves every swept rate. Each point's adapters open a connection per
/// live slot, and the sweep hangs all of them up between points
/// ([`prism_core::PrismServer::close_all_connections`]), so the
/// recycled slots absorb the next point's opens. Three points × 1 500
/// connections = 4 500 opens against a 4 096-slot scratch table — the
/// sweep only completes because slots are freed and reused; before
/// recycling this forced a cold-started system per point.
#[test]
fn rate_sweep_reuses_one_system_through_recycled_connections() {
    use prism_harness::openloop::sweep_rates;
    let (s, addr, rkey) = stall_server();
    let knobs = OpenLoopKnobs {
        rates_per_sec: vec![1e5, 2e5, 3e5],
        logical_clients: 1_500,
        max_inflight: 0,
        actors: 4,
        warmup: SimDuration::micros(100),
        measure: SimDuration::millis(1),
    };
    let server = Arc::clone(&s);
    let results = sweep_rates(
        &[Arc::clone(&s)],
        &CostModel::testbed(),
        VerbPath::Nic,
        &knobs,
        seed(),
        &FaultPlan::default(),
        || {
            let server = Arc::clone(&server);
            Rc::new(RefCell::new(move |_i: usize| {
                // One on-NIC scratch slot per live adapter slot, held
                // until the sweep hangs up between points.
                let _conn = server.open_connection();
                Box::new(RetryingRead { addr, rkey }) as Box<dyn ProtoAdapter>
            })) as AdapterFactory
        },
    );
    assert_eq!(results.len(), 3, "every swept rate must produce a point");
    for (rate, r) in &results {
        assert!(r.completed > 0, "no completions at {rate} ops/s");
    }
    assert_eq!(
        s.connections_open(),
        0,
        "the sweep must hang up every connection it opened"
    );
}

/// The sharded counterpart of the sweep-replay smoke: a 4-shard
/// PRISM-KV cluster (seeded rendezvous routing, per-key client-side
/// placement) swept open-loop twice at the same seed must replay
/// bit-exactly — shard routing, per-shard preload, and cross-shard
/// completion merging introduce no nondeterminism. CI runs this at the
/// default seed and again under `PRISM_TEST_SEED=1806242025`.
#[test]
fn sharded_kv_open_loop_sweep_replays_bit_exactly() {
    let mut cfg = KvExpConfig::quick(1.0);
    cfg.seed ^= seed();
    let knobs = OpenLoopKnobs::quick();
    let (_t, a) = kv_exp::open_loop_sharded(&cfg, &knobs, 4);
    let (_t, b) = kv_exp::open_loop_sharded(&cfg, &knobs, 4);
    assert_eq!(a, b, "same seed must replay the sharded sweep bit-exactly");
    for (rate, r) in &a {
        assert!(
            r.completed > 0,
            "no completions at {rate} ops/s on 4 shards"
        );
    }
}
