//! Durability gate: the recovery-traffic regression for the durable
//! segment tier. An amnesia restart with an intact local log must
//! rebuild by *replay* and fetch strictly less from peers than a wiped
//! replica's full resync — the counters prove the traffic cut, not just
//! survival. Torn log tails and at-rest rot are detected by CRC,
//! truncated, and healed by the delta resync; the KV write-ahead
//! discipline makes crash tears provably empty. Every scenario replays
//! bit-exactly under the same seed.

use std::sync::Arc;

use prism_kv::hash::key_bytes;
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_kv::{KvOutcome, KvStep};
use prism_rs::prism_rs::{drive, RsCluster, RsConfig};
use prism_rs::RsOutcome;
use prism_simnet::rng::SimRng;

/// Per-test seed; `PRISM_TEST_SEED=<n>` perturbs every scenario (each
/// keeps a distinct XOR base) so CI exercises the gate — including its
/// bit-exact-replay assertions — at more than one point.
fn seed_or(base: u64) -> u64 {
    std::env::var("PRISM_TEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|s| s ^ base)
        .unwrap_or(base)
}

/// 12 blocks with the default barrier cadence of 8 leaves a 4-record
/// unsynced tail on every replica — enough sealed history to replay and
/// enough exposed tail for a tear to bite.
const BLOCKS: u64 = 12;
const VALUE: usize = 64;

fn seeded_values(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SimRng::new(seed ^ 0x5EED_DA7A);
    (0..BLOCKS)
        .map(|_| (0..VALUE).map(|_| rng.next_u64() as u8).collect())
        .collect()
}

fn write_all(cl: &RsCluster, vals: &[Vec<u8>]) {
    let c = cl.open_client();
    for (b, v) in vals.iter().enumerate() {
        let (op, step) = c.put(b as u64, v.clone());
        assert_eq!(
            drive(cl, &c, op, step, &[false; 3]),
            RsOutcome::Written,
            "seed write for block {b} must land"
        );
    }
}

/// Reads every block through a quorum that excludes replica 0, so the
/// restarted replica 1 must participate in every read.
fn check_values(cl: &RsCluster, vals: &[Vec<u8>], inc: u64) {
    let mut c = cl.open_client();
    c.refence(1, inc);
    for (b, v) in vals.iter().enumerate() {
        let (op, step) = c.get(b as u64);
        assert_eq!(
            drive(cl, &c, op, step, &[true, false, false]),
            RsOutcome::Value(v.clone()),
            "block {b} must read back intact after recovery"
        );
    }
}

// ---------------------------------------------------------------------
// The regression of record: intact-log delta vs wiped-disk full resync
// ---------------------------------------------------------------------

/// One full scenario; returns the counter tuple for bit-exact replay:
/// `(replayed_intact, delta_intact, replayed_wiped, delta_wiped)`.
fn delta_vs_full(seed: u64) -> (u64, u64, u64, u64) {
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    let cl = RsCluster::new(3, &config);
    let vals = seeded_values(seed);
    write_all(&cl, &vals);
    let stats = Arc::clone(cl.durable_stats());

    // Leg 1 — intact log: replay recovers everything the log holds;
    // the delta probe finds no peer ahead and fetches nothing.
    let inc = cl.amnesia_restart(1);
    let (replayed_intact, delta_intact) = (stats.replayed(), stats.delta_resynced());
    check_values(&cl, &vals, inc);

    // Leg 2 — wiped disk (a fresh replacement replica): nothing to
    // replay, so every written block crosses the network.
    stats.reset();
    cl.replica(1).store().wipe();
    let inc = cl.amnesia_restart(1);
    let (replayed_wiped, delta_wiped) = (stats.replayed(), stats.delta_resynced());
    check_values(&cl, &vals, inc);

    (replayed_intact, delta_intact, replayed_wiped, delta_wiped)
}

#[test]
fn intact_log_delta_resync_is_strictly_below_full_resync() {
    let seed = seed_or(0xD04A_0001);
    let (replayed_intact, delta_intact, replayed_wiped, delta_wiped) = delta_vs_full(seed);
    println!(
        "durability: intact replay={replayed_intact} delta={delta_intact} | \
         wiped replay={replayed_wiped} delta={delta_wiped}"
    );
    assert!(
        replayed_intact >= BLOCKS,
        "every written block must come back from the local log \
         (replayed={replayed_intact})"
    );
    assert_eq!(
        delta_intact, 0,
        "an intact log leaves nothing for the delta resync to fetch"
    );
    assert_eq!(
        replayed_wiped, 0,
        "a wiped disk has nothing to replay (replayed={replayed_wiped})"
    );
    assert_eq!(
        delta_wiped, BLOCKS,
        "a wiped replica pulls every written block over the network"
    );
    assert!(
        delta_intact < delta_wiped,
        "the headline regression: recovery traffic with a local log must be \
         strictly below the full-resync baseline \
         ({delta_intact} vs {delta_wiped})"
    );

    // Same seed, fresh cluster: the whole scenario replays bit-exactly.
    assert_eq!(
        delta_vs_full(seed),
        (replayed_intact, delta_intact, replayed_wiped, delta_wiped),
        "replay must be bit-exact"
    );
}

// ---------------------------------------------------------------------
// Torn tail: truncated by CRC, healed by exactly the delta
// ---------------------------------------------------------------------

fn torn_tail(seed: u64) -> (u64, u64, u64, u64) {
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    let cl = RsCluster::new(3, &config);
    let vals = seeded_values(seed);
    write_all(&cl, &vals);
    let stats = Arc::clone(cl.durable_stats());

    // The crash catches replica 1 with an unsynced tail and tears it.
    let mut rng = SimRng::new(seed ^ 0x7EA2_0001);
    let torn = cl.replica(1).disk().tear_tail(&mut rng);
    assert!(
        torn > 0,
        "the barrier cadence must leave an unsynced tail for the tear"
    );
    let inc = cl.amnesia_restart(1);
    // Whatever the tear took, recovery must (a) notice — by truncating
    // the damaged tail frame — and (b) heal it from peers, and the two
    // recovery sources together must still cover every block.
    let (replayed, delta) = (stats.replayed(), stats.delta_resynced());
    assert!(
        delta > 0,
        "a torn tail record must be refetched from peers (delta={delta})"
    );
    assert!(
        delta < BLOCKS,
        "the delta must stay a tail repair, not a full resync (delta={delta})"
    );
    assert!(replayed > 0, "the sealed prefix must still replay");
    check_values(&cl, &vals, inc);
    (replayed, delta, stats.segments_truncated(), torn)
}

#[test]
fn torn_tail_is_truncated_and_healed_by_the_delta() {
    let seed = seed_or(0xD04A_0002);
    let key = torn_tail(seed);
    println!(
        "durability-torn: replayed={} delta={} truncated={} torn_bytes={}",
        key.0, key.1, key.2, key.3
    );
    assert_eq!(torn_tail(seed), key, "replay must be bit-exact");
}

// ---------------------------------------------------------------------
// At-rest rot: detected by CRC, never served, healed from peers
// ---------------------------------------------------------------------

fn rotted_log(seed: u64) -> (u64, u64, u32) {
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    let cl = RsCluster::new(3, &config);
    let vals = seeded_values(seed);
    write_all(&cl, &vals);
    let stats = Arc::clone(cl.durable_stats());

    // Rot a healthy handful of bits anywhere on replica 1's disk —
    // sealed segments, tail, manifest, headers: all fair game.
    let mut rng = SimRng::new(seed ^ 0x0707_0001);
    let flips = cl.replica(1).disk().rot(&mut rng, 16);
    assert!(flips > 0, "rot must land on a non-empty disk");
    let inc = cl.amnesia_restart(1);
    // The only hard guarantees: damage is never *served* (every block
    // reads back correct through the restarted replica), and what
    // replay lost to CRC rejection the delta made up from peers.
    let (replayed, delta) = (stats.replayed(), stats.delta_resynced());
    check_values(&cl, &vals, inc);
    (replayed, delta, flips)
}

#[test]
fn rotted_segments_are_never_served_and_heal_from_peers() {
    let seed = seed_or(0xD04A_0003);
    let key = rotted_log(seed);
    println!(
        "durability-rot: replayed={} delta={} flips={}",
        key.0, key.1, key.2
    );
    assert_eq!(rotted_log(seed), key, "replay must be bit-exact");
}

// ---------------------------------------------------------------------
// Checkpointing: replay cost stops growing with log length
// ---------------------------------------------------------------------

/// Appends `rounds` batches of updates over a small hot key set,
/// checkpointing the last-wins fold after each batch when asked.
/// Returns `(decoded_records, segments_skipped)` for the final replay —
/// the two numbers that define replay cost.
fn replay_cost(seed: u64, rounds: u64, checkpointed: bool) -> (usize, u64) {
    use prism_store::{Record, SegmentStore, SimDisk};
    use std::collections::BTreeMap;
    let disk = Arc::new(SimDisk::new());
    // Small limit so every round seals segments — checkpoints have
    // sealed history to cover.
    let store = SegmentStore::with_limit(disk, "ckpt", 1024);
    let mut rng = SimRng::new(seed ^ 0xC4EC_0001);
    let mut latest: BTreeMap<u64, Record> = BTreeMap::new();
    for _ in 0..rounds {
        for _ in 0..24 {
            let rec = Record {
                epoch: 1,
                inc: 1,
                key: rng.next_u64() % 8,
                payload: (0..VALUE).map(|_| rng.next_u64() as u8).collect(),
            };
            store.append(&rec);
            latest.insert(rec.key, rec);
        }
        store.barrier();
        if checkpointed {
            let fold: Vec<Record> = latest.values().cloned().collect();
            store.checkpoint(&fold);
        }
    }
    let r = store.replay();
    // Replay must land on the same last-wins state either way.
    let mut folded: BTreeMap<u64, &Record> = BTreeMap::new();
    for rec in &r.records {
        folded.insert(rec.key, rec);
    }
    assert_eq!(folded.len(), latest.len(), "replay state must match");
    for (k, want) in &latest {
        assert_eq!(folded[k].payload, want.payload, "key {k} diverged");
    }
    (r.records.len(), r.segments_skipped)
}

#[test]
fn checkpointed_replay_cost_stops_growing_with_log_length() {
    let seed = seed_or(0xD04A_0005);
    // Without checkpoints, replay decodes the whole history: cost is
    // linear in rounds.
    let (short_plain, _) = replay_cost(seed, 4, false);
    let (long_plain, _) = replay_cost(seed, 16, false);
    assert!(
        long_plain >= short_plain * 3,
        "un-checkpointed replay must grow with the log \
         ({short_plain} -> {long_plain})"
    );
    // With checkpoints, the manifest watermark lets replay skip every
    // covered segment: cost is bounded by fold size + one round's tail,
    // independent of how many rounds ran before.
    let (short_ck, _) = replay_cost(seed, 4, true);
    let (long_ck, skipped) = replay_cost(seed, 16, true);
    println!(
        "durability-ckpt: plain {short_plain}->{long_plain} \
         checkpointed {short_ck}->{long_ck} skipped={skipped}"
    );
    assert!(skipped > 0, "the watermark must actually skip segments");
    assert!(
        long_ck <= short_ck + 8,
        "checkpointed replay cost must stop growing \
         ({short_ck} -> {long_ck})"
    );
    assert!(
        long_ck < long_plain / 3,
        "the headline regression: checkpointing must cut long-log replay \
         cost sharply ({long_ck} vs {long_plain})"
    );
    // Same seed, fresh run: bit-exact.
    assert_eq!(
        replay_cost(seed, 16, true),
        (long_ck, skipped),
        "replay must be bit-exact"
    );
}

// ---------------------------------------------------------------------
// KV: the write-ahead barrier discipline makes tears empty
// ---------------------------------------------------------------------

fn drive_put(s: &PrismKvServer, key: &[u8], value: &[u8]) -> KvOutcome {
    use prism_core::msg::execute_local;
    let c = s.open_client();
    let (mut op, req) = c.put(key, value);
    let mut reply = execute_local(s.server(), &req);
    loop {
        match op.on_reply(&c, reply) {
            KvStep::Send {
                request,
                background,
            } => {
                if let Some(bg) = background {
                    let _ = execute_local(s.server(), &bg);
                }
                reply = execute_local(s.server(), &request);
            }
            KvStep::Done {
                outcome,
                background,
            } => {
                if let Some(bg) = background {
                    let _ = execute_local(s.server(), &bg);
                }
                return outcome;
            }
        }
    }
}

#[test]
fn kv_write_ahead_log_leaves_nothing_for_a_tear_to_take() {
    let seed = seed_or(0xD04A_0004);
    let cfg = PrismKvConfig::paper(BLOCKS, VALUE);
    let s = PrismKvServer::new(&cfg);
    let mut rng = SimRng::new(seed);
    let vals: Vec<Vec<u8>> = (0..BLOCKS)
        .map(|_| (0..VALUE).map(|_| rng.next_u64() as u8).collect())
        .collect();
    for (k, v) in vals.iter().enumerate() {
        assert_eq!(
            drive_put(&s, &key_bytes(k as u64), v),
            KvOutcome::Written,
            "seed write for key {k} must land"
        );
    }
    // Every acknowledged install barriered before its ack, so the crash
    // tear finds nothing unsynced — that is the write-ahead contract.
    let torn = s.disk().tear_tail(&mut rng);
    assert_eq!(
        torn, 0,
        "KV syncs every acknowledged append; a tear must come up empty"
    );
    let inc = s.amnesia_restart();
    assert_eq!(
        s.durable_stats().segments_truncated(),
        0,
        "no torn frame can exist in a write-through log"
    );
    assert!(
        s.durable_stats().replayed() >= BLOCKS,
        "every key must rebuild from the log"
    );
    // Full read-back through a refenced client: zero lost records.
    use prism_core::msg::execute_local;
    let mut c = s.open_client();
    c.refence(inc);
    for (k, v) in vals.iter().enumerate() {
        let (mut op, req) = c.get(&key_bytes(k as u64));
        let mut reply = execute_local(s.server(), &req);
        let outcome = loop {
            match op.on_reply(&c, reply) {
                KvStep::Send { request, .. } => {
                    reply = execute_local(s.server(), &request);
                }
                KvStep::Done { outcome, .. } => break outcome,
            }
        };
        assert_eq!(
            outcome,
            KvOutcome::Value(Some(v.clone())),
            "key {k} must survive the amnesia restart"
        );
    }
}
