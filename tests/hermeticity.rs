//! Regression test for the no-registry-dependencies policy: the
//! workspace must build with `--offline` from a clean checkout, which
//! means every dependency in every manifest has to be a `path` (or
//! `workspace = true`, resolving to a path) dependency. A registry dep
//! reappearing here is the failure mode this test exists to catch.
//!
//! The check is a plain-text manifest scan rather than `cargo metadata`
//! so it runs without invoking cargo and keeps working even when the
//! resolver itself is what broke. `scripts/check_hermetic.sh` wraps the
//! same rule for use outside the test harness.

use std::fs;
use std::path::{Path, PathBuf};

/// Root of the workspace, derived from this test's compile-time
/// location (tests/hermeticity.rs is wired into prism-harness, so
/// CARGO_MANIFEST_DIR points at crates/harness).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/harness has a grandparent")
        .to_path_buf()
}

/// All Cargo.toml files that participate in the workspace build.
fn manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ directory") {
        let m = entry.expect("dir entry").path().join("Cargo.toml");
        if m.is_file() {
            out.push(m);
        }
    }
    assert!(out.len() >= 10, "expected the workspace's ten manifests");
    out
}

/// Returns the offending lines: dependency entries that are neither
/// path-based nor `workspace = true`.
fn violations(manifest: &Path) -> Vec<String> {
    let text = fs::read_to_string(manifest).expect("readable manifest");
    let mut bad = Vec::new();
    let mut in_dep_section = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            // [dependencies], [dev-dependencies], [build-dependencies],
            // [workspace.dependencies], and target-specific variants.
            in_dep_section = line.contains("dependencies");
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // A dependency line is hermetic iff it names a path or defers
        // to the (path-only) workspace table. Bare versions
        // (`foo = "1"`), version keys, git, and registry keys all mean
        // a network fetch.
        let hermetic = (line.contains("path") && line.contains('='))
            || line.contains("workspace = true")
            || line.contains("workspace=true");
        let fetches = line.contains("version")
            || line.contains("git =")
            || line.contains("git=")
            || line.contains("registry")
            || line.trim_end().ends_with('"') && line.contains("= \"");
        if !hermetic && fetches {
            bad.push(format!("{}: {}", manifest.display(), raw.trim()));
        }
    }
    bad
}

/// No manifest in the workspace may declare a registry or git
/// dependency; everything must resolve inside the repo.
#[test]
fn all_dependencies_are_path_only() {
    let root = workspace_root();
    let mut bad = Vec::new();
    for m in manifests(&root) {
        bad.extend(violations(&m));
    }
    assert!(
        bad.is_empty(),
        "non-path dependencies found (the workspace must build with \
         `cargo build --offline`):\n{}",
        bad.join("\n")
    );
}

/// The workspace dependency table itself only contains path entries,
/// so `workspace = true` in member crates can never smuggle in a
/// registry dep.
#[test]
fn workspace_table_is_path_only() {
    let root = workspace_root();
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let mut in_table = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && line.contains('=') {
            assert!(
                line.contains("path"),
                "[workspace.dependencies] entry without a path: {}",
                raw.trim()
            );
        }
    }
}

/// The hermeticity shell check stays in sync with this test: the
/// script must exist, be executable, and encode the same rule.
#[test]
fn check_hermetic_script_present() {
    let script = workspace_root().join("scripts/check_hermetic.sh");
    let text = fs::read_to_string(&script).expect("scripts/check_hermetic.sh exists");
    assert!(
        text.contains("path") && text.contains("dependencies"),
        "check_hermetic.sh no longer checks dependency paths"
    );
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        let mode = fs::metadata(&script)
            .expect("stat script")
            .permissions()
            .mode();
        assert!(mode & 0o111 != 0, "check_hermetic.sh is not executable");
    }
}
