//! Property-based tests for the durable segment tier's on-disk format:
//! headers, record frames, and the manifest must reject every mutated
//! or truncated input with a *typed* [`StoreError`] — never a panic,
//! and never a silent acceptance of damaged bytes. Single-byte
//! mutations sit inside CRC32's guaranteed burst-detection window, so
//! "mutated frame decodes to an error" is a hard property, not a
//! probabilistic one. Runs on the in-repo `prism-testkit` harness;
//! failures print a `PRISM_TEST_SEED` for exact replay.

use std::sync::Arc;

use prism_simnet::rng::SimRng;
use prism_store::segment::{
    decode_header, decode_manifest, decode_record, encode_header, encode_manifest,
    encode_record_into, HEADER_LEN, MANIFEST_MAGIC, SEGMENT_MAGIC,
};
use prism_store::{Record, SealedSeg, SegmentStore, SimDisk};
use prism_testkit::{for_all, gens, Config, Gen};

/// An arbitrary record, biased toward small payloads (empty included —
/// that is the DELETE / fence shape the servers actually log).
fn arb_record() -> Gen<Record> {
    gens::t4(
        gens::u64s(),
        gens::u64s(),
        gens::u64s(),
        gens::vec(gens::u8s(), 0..48),
    )
    .map(|(epoch, inc, key, payload)| Record {
        epoch,
        inc,
        key,
        payload,
    })
}

/// A non-zero byte mask: XORing it in changes at least one bit.
fn arb_mask() -> Gen<u8> {
    gens::u8s().map(|m| m | 1)
}

/// Round trip first: an intact frame must decode to exactly what was
/// encoded, consuming exactly its own bytes even with a trailing
/// neighbor frame behind it.
#[test]
fn intact_records_round_trip() {
    let gen = gens::t2(arb_record(), arb_record());
    for_all(
        "intact_records_round_trip",
        &Config::with_cases(256),
        &gen,
        |(a, b)| {
            let mut bytes = Vec::new();
            encode_record_into(a, &mut bytes);
            let first_len = bytes.len();
            encode_record_into(b, &mut bytes);
            let (da, used) = decode_record(&bytes).expect("intact frame must decode");
            assert_eq!(&da, a);
            assert_eq!(used, first_len, "frame must consume exactly itself");
            let (db, _) = decode_record(&bytes[used..]).expect("second frame must decode");
            assert_eq!(&db, b);
        },
    );
}

/// Every single-byte mutation of a record frame decodes to a typed
/// error: the length word is bounds-checked and the frame CRC covers
/// everything else, so no flipped frame can pass as valid data.
#[test]
fn mutated_records_decode_to_typed_errors() {
    let gen = gens::t3(arb_record(), gens::u64s(), arb_mask());
    for_all(
        "mutated_records_decode_to_typed_errors",
        &Config::with_cases(512),
        &gen,
        |(rec, pos, mask)| {
            let mut bytes = Vec::new();
            encode_record_into(rec, &mut bytes);
            let at = (*pos as usize) % bytes.len();
            bytes[at] ^= mask;
            decode_record(&bytes).expect_err("mutated record frame decoded");
        },
    );
}

/// Every strict prefix of a record frame is a typed truncation error,
/// never a panic from a short slice and never a short parse.
#[test]
fn truncated_records_decode_to_typed_errors() {
    let gen = gens::t2(arb_record(), gens::u64s());
    for_all(
        "truncated_records_decode_to_typed_errors",
        &Config::with_cases(256),
        &gen,
        |(rec, cut)| {
            let mut bytes = Vec::new();
            encode_record_into(rec, &mut bytes);
            let keep = (*cut as usize) % bytes.len();
            decode_record(&bytes[..keep]).expect_err("truncated record frame decoded");
        },
    );
}

/// Segment headers: intact ones verify, every single-byte mutation is
/// rejected (magic, version, flags, and reserved bytes are all under
/// the header CRC), and every truncation is rejected. The same holds
/// with the manifest magic.
#[test]
fn mutated_headers_decode_to_typed_errors() {
    let gen = gens::t3(gens::u64s(), gens::u64s(), arb_mask());
    for_all(
        "mutated_headers_decode_to_typed_errors",
        &Config::with_cases(256),
        &gen,
        |(pos, cut, mask)| {
            for magic in [SEGMENT_MAGIC, MANIFEST_MAGIC] {
                let mut h = encode_header(magic).to_vec();
                decode_header(&h, magic).expect("intact header must verify");
                // Crossed magics are a typed error too, not a panic.
                let other = if magic == SEGMENT_MAGIC {
                    MANIFEST_MAGIC
                } else {
                    SEGMENT_MAGIC
                };
                decode_header(&h, other).expect_err("wrong-magic header verified");

                let at = (*pos as usize) % HEADER_LEN;
                h[at] ^= mask;
                decode_header(&h, magic).expect_err("mutated header verified");
                h[at] ^= mask; // restore
                let keep = (*cut as usize) % HEADER_LEN;
                decode_header(&h[..keep], magic).expect_err("truncated header verified");
            }
        },
    );
}

/// The manifest: an intact encode round-trips, and any single-byte
/// mutation or truncation is a typed error. A damaged manifest must
/// never yield a wrong-but-plausible segment list — replay falls back
/// to scanning the disk instead.
#[test]
fn mutated_manifests_decode_to_typed_errors() {
    let seg = gens::t3(gens::u32s(), gens::range_u64(0..(1 << 20)), gens::u32s())
        .map(|(seq, len, records)| SealedSeg { seq, len, records });
    let gen = gens::t4(gens::vec(seg, 0..6), gens::u32s(), gens::u64s(), arb_mask());
    for_all(
        "mutated_manifests_decode_to_typed_errors",
        &Config::with_cases(256),
        &gen,
        |(sealed, checkpoint, pos, mask)| {
            let bytes = encode_manifest(sealed, *checkpoint);
            let m = decode_manifest(&bytes).expect("intact manifest must decode");
            assert_eq!(&m.sealed, sealed);
            assert_eq!(m.checkpoint, *checkpoint);
            let mut mutated = bytes.clone();
            let at = (*pos as usize) % mutated.len();
            mutated[at] ^= mask;
            decode_manifest(&mutated).expect_err("mutated manifest decoded");
            let keep = (*pos as usize) % bytes.len();
            decode_manifest(&bytes[..keep]).expect_err("truncated manifest decoded");
        },
    );
}

/// End to end against the store: write a log, then vandalize the raw
/// disk bytes (a flip at an arbitrary offset of an arbitrary file plus
/// a seeded tail tear) and replay. Replay must never panic, never
/// return a record that was not appended, and must stop each segment at
/// its first bad frame — the surviving records are a prefix of what
/// went in, in order.
#[test]
fn replay_of_vandalized_logs_never_yields_foreign_records() {
    let gen = gens::t4(
        gens::vec(arb_record(), 1..24),
        gens::u64s(),
        arb_mask(),
        gens::u64s(),
    );
    for_all(
        "replay_of_vandalized_logs_never_yields_foreign_records",
        &Config::with_cases(128),
        &gen,
        |(recs, pos, mask, tear_seed)| {
            let disk = Arc::new(SimDisk::new());
            // A small limit forces multi-segment logs even at this size.
            let store = SegmentStore::with_limit(Arc::clone(&disk), "p", 256);
            for r in recs {
                store.append(r);
            }
            // Leave the tail unsynced so the tear has something to eat.
            let mut rng = SimRng::new(*tear_seed);
            disk.tear_tail(&mut rng);
            for name in disk.list("p") {
                let len = disk.len(&name).unwrap_or(0);
                if len > 0 && *pos % 2 == 0 {
                    let mut bytes = disk.read(&name).expect("listed file reads");
                    bytes[(*pos as usize) % len] ^= mask;
                    disk.truncate(&name, 0);
                    disk.append(&name, &bytes);
                    break;
                }
            }
            let replay = store.replay();
            let mut it = recs.iter();
            for got in &replay.records {
                // Every survivor matches the next appended record: no
                // reordering, no invention, no tail past a bad frame.
                assert!(
                    it.any(|want| want == got),
                    "replay yielded a record that was never appended (or out of order)"
                );
            }
        },
    );
}
