//! End-to-end key-value integration: PRISM-KV and Pilaf side by side on
//! the same workloads, checked against an in-memory model.

use std::collections::HashMap;
use std::sync::Arc;

use prism_core::msg::{execute_local, Reply, Request};
use prism_kv::hash::{key_bytes, HashScheme};
use prism_kv::pilaf::{PilafClient, PilafConfig, PilafServer};
use prism_kv::prism_kv::{PrismKvClient, PrismKvConfig, PrismKvServer, SizeClass};
use prism_kv::{KvOutcome, KvStep};
use prism_simnet::rng::SimRng;
use prism_workload::ycsb::value_bytes;

/// Asserts a value produced by `value_bytes(key, nonce, ..)` is whole:
/// every 16-byte stripe must carry the key and the *same* nonce — a torn
/// read mixing two writes breaks the nonce consistency.
fn assert_untorn(key: u64, v: &[u8]) {
    assert!(v.len() >= 16);
    let nonce = &v[8..16];
    for (i, stripe) in v.chunks(16).enumerate() {
        assert_eq!(
            &stripe[0..8.min(stripe.len())],
            &key.to_le_bytes()[..8.min(stripe.len())],
            "stripe {i}: key"
        );
        if stripe.len() == 16 {
            assert_eq!(&stripe[8..16], nonce, "stripe {i}: torn nonce");
        }
    }
}

fn drive_kv(
    server: &Arc<prism_core::PrismServer>,
    first: Request,
    mut step_fn: impl FnMut(Reply) -> KvStep,
) -> KvOutcome {
    let mut reply = execute_local(server, &first);
    loop {
        match step_fn(reply) {
            KvStep::Send {
                request,
                background,
            } => {
                if let Some(b) = background {
                    execute_local(server, &b);
                }
                reply = execute_local(server, &request);
            }
            KvStep::Done {
                outcome,
                background,
            } => {
                if let Some(b) = background {
                    execute_local(server, &b);
                }
                return outcome;
            }
        }
    }
}

fn prism_get(s: &PrismKvServer, c: &PrismKvClient, key: &[u8]) -> KvOutcome {
    let (mut op, req) = c.get(key);
    drive_kv(s.server(), req, |r| op.on_reply(c, r))
}

fn prism_put(s: &PrismKvServer, c: &PrismKvClient, key: &[u8], val: &[u8]) -> KvOutcome {
    let (mut op, req) = c.put(key, val);
    drive_kv(s.server(), req, |r| op.on_reply(c, r))
}

fn pilaf_get(s: &PilafServer, c: &PilafClient, key: &[u8]) -> KvOutcome {
    let (mut op, req) = c.get(key);
    drive_kv(s.server(), req, |r| op.on_reply(c, r))
}

fn pilaf_put(s: &PilafServer, c: &PilafClient, key: &[u8], val: &[u8]) -> KvOutcome {
    let reply = execute_local(s.server(), &c.put_request(key, val));
    c.put_outcome(reply)
}

/// Both stores, same random operation sequence, checked against a model.
#[test]
fn random_workload_matches_model_on_both_stores() {
    let n_keys = 256u64;
    let prism = PrismKvServer::new(&PrismKvConfig::paper(n_keys, 64));
    let pilaf = PilafServer::new(&PilafConfig::paper(n_keys, 64));
    let pc = prism.open_client();
    let lc = pilaf.open_client();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut rng = SimRng::new(99);
    for i in 0..3_000u64 {
        let k = rng.gen_range(n_keys);
        let key = key_bytes(k);
        if rng.gen_bool(0.5) {
            let val = value_bytes(k, i, 64);
            assert_eq!(prism_put(&prism, &pc, &key, &val), KvOutcome::Written);
            assert_eq!(pilaf_put(&pilaf, &lc, &key, &val), KvOutcome::Written);
            model.insert(k, val);
        } else {
            let expected = KvOutcome::Value(model.get(&k).cloned());
            assert_eq!(prism_get(&prism, &pc, &key), expected, "PRISM-KV key {k}");
            assert_eq!(pilaf_get(&pilaf, &lc, &key), expected, "Pilaf key {k}");
        }
    }
}

/// Buffer accounting across heavy churn: the free-list population must
/// return to its starting point once all values are deleted.
#[test]
fn prism_kv_reclaims_every_buffer() {
    let cfg = PrismKvConfig {
        capacity: 64,
        scheme: HashScheme::Fnv,
        max_entry_len: 128,
        classes: vec![SizeClass {
            buf_len: 128,
            count: 96,
        }],
    };
    let s = PrismKvServer::new(&cfg);
    let c = s.open_client();
    let start = s.server().freelists().available(prism_core::FreeListId(0));
    for round in 0..5 {
        for k in 0..32u64 {
            let v = value_bytes(k, round, 50);
            assert_eq!(prism_put(&s, &c, &key_bytes(k), &v), KvOutcome::Written);
        }
    }
    for k in 0..32u64 {
        let (mut op, req) = c.delete(&key_bytes(k));
        let o = drive_kv(s.server(), req, |r| op.on_reply(&c, r));
        assert_eq!(o, KvOutcome::Written);
    }
    assert_eq!(
        s.server().freelists().available(prism_core::FreeListId(0)),
        start,
        "every buffer must come back after deletes"
    );
}

/// Concurrent mixed workload on PRISM-KV: values must never tear and
/// every read must return some complete previously-written value.
#[test]
fn prism_kv_concurrent_mixed_workload_is_atomic() {
    let s = Arc::new(PrismKvServer::new(&PrismKvConfig::paper(32, 64)));
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let c = s.open_client();
                for i in 0..200u64 {
                    let k = (t * 7 + i) % 32;
                    let v = value_bytes(k, t << 32 | i, 64);
                    assert_eq!(prism_put(&s, &c, &key_bytes(k), &v), KvOutcome::Written);
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4u64)
        .map(|t| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let c = s.open_client();
                let mut rng = SimRng::new(t);
                for _ in 0..500 {
                    let k = rng.gen_range(32);
                    match prism_get(&s, &c, &key_bytes(k)) {
                        KvOutcome::Value(Some(v)) => {
                            assert_eq!(v.len(), 64);
                            assert_untorn(k, &v);
                        }
                        KvOutcome::Value(None) => {}
                        other => panic!("GET failed: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }
}

/// Pilaf under concurrent churn: CRCs plus out-of-place extents must
/// prevent torn reads, with bounded retries absorbing races.
#[test]
fn pilaf_concurrent_reads_see_complete_values() {
    let s = Arc::new(PilafServer::new(&PilafConfig::paper(16, 64)));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let puts = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let writer = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        let puts = Arc::clone(&puts);
        std::thread::spawn(move || {
            let c = s.open_client();
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let k = i % 16;
                pilaf_put(&s, &c, &key_bytes(k), &value_bytes(k, i, 64));
                i += 1;
                puts.store(i, std::sync::atomic::Ordering::Release);
                // Pace the writer: an unthrottled in-process loop churns
                // extents far faster than any real 6 us RPC path could,
                // which would make every read a CRC-retry storm.
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        })
    };
    // Wait for one full pass over the key space before reading: on a
    // loaded machine the reader can otherwise finish its entire loop
    // before the writer's first PUT lands, and `hits > 0` below would
    // fail spuriously. The churn being tested still overlaps the reads.
    while puts.load(std::sync::atomic::Ordering::Acquire) < 16 {
        std::thread::yield_now();
    }
    let c = s.open_client();
    let mut rng = SimRng::new(5);
    let mut hits = 0;
    for _ in 0..3_000 {
        let k = rng.gen_range(16);
        match pilaf_get(&s, &c, &key_bytes(k)) {
            KvOutcome::Value(Some(v)) => {
                assert_untorn(k, &v);
                hits += 1;
            }
            KvOutcome::Value(None) => {}
            KvOutcome::Failed(_) => {} // CRC retry budget exhausted under churn
            o => panic!("{o:?}"),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
    assert!(hits > 0, "reads should observe written values");
}
