//! Corruption matrix gate: every protocol family (KV, Pilaf, RS, TX)
//! crossed with every corruption mode (in-flight bit flips, torn
//! multi-line writes, at-rest bit rot), under fixed seeds.
//!
//! Each cell asserts *conservation*, not just survival: every injected
//! corruption is either detected (and then repaired or cleanly
//! aborted) or provably neutralized — a torn write's buffer is
//! orphaned by the out-of-place update discipline, and at-rest damage
//! that nobody overwrote is still visible to a post-run scrub. Nothing
//! injected may ever surface as a silently wrong answer, and the same
//! seed must replay bit-exactly.

use std::sync::Arc;

use prism_core::integrity::IntegrityStats;
use prism_harness::adapters::{PilafAdapter, PrismKvAdapter, PrismRsAdapter, PrismTxAdapter};
use prism_harness::kv_exp;
use prism_harness::netsim::{run_closed_loop_with, RecoveryHooks, RunResult, VerbPath};
use prism_kv::pilaf::{PilafConfig, PilafServer};
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_rs::prism_rs::{RsCluster, RsConfig, BUF_HDR};
use prism_simnet::fault::FaultPlan;
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_tx::prism_tx::{TxCluster, TxConfig};
use prism_workload::{KeyDist, TxnGen, YcsbConfig};

const SEED: u64 = 0xC0_880B;
const KEYS: u64 = 32;
const VALUE: usize = 64;
const WARMUP: SimDuration = SimDuration::from_nanos(200_000);
const MEASURE: SimDuration = SimDuration::from_nanos(1_200_000);

/// The recover-crash window every torn/rot cell schedules; rot events
/// must land inside it.
const CRASH_FROM: SimTime = SimTime::from_nanos(400_000);
const CRASH_UNTIL: SimTime = SimTime::from_nanos(800_000);
const ROT_AT: SimTime = SimTime::from_nanos(500_000);

fn base_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed).with_timeout(SimDuration::micros(60))
}

/// Five short crash windows instead of one long stall: payload-bearing
/// install chains are a PUT's *second* round trip, so a server that
/// stays down just makes clients stall on probes. Frequent brief
/// windows keep catching installs already in flight at each boundary —
/// the case torn writes model.
fn torn_windows(mut plan: FaultPlan, server: usize) -> FaultPlan {
    for k in 0..5u64 {
        let from = 400_000 + k * 100_000;
        plan = plan.with_crash(
            server,
            SimTime::from_nanos(from),
            SimTime::from_nanos(from + 40_000),
        );
    }
    plan.with_torn_writes(0.5)
}

/// The replay identity of a run: throughput plus every fault and
/// corruption counter.
fn key(r: &RunResult) -> [u64; 12] {
    [
        r.tput_ops as u64,
        r.failed,
        r.drops,
        r.timeouts,
        r.retries,
        r.giveups,
        r.crash_drops,
        r.restarts,
        r.corruptions_injected,
        r.corruptions_detected,
        r.corruptions_repaired,
        r.aborted_corrupt,
    ]
}

/// Flip-cell conservation: the frame CRCs catch every single-bit flip
/// at the instant it is injected, and every operation that saw a
/// corrupt NACK settles as repaired (retry succeeded) or aborted.
fn assert_flip_conservation(system: &str, r: &RunResult) {
    assert!(r.tput_ops > 0.0, "{system}/flip: no progress: {r:?}");
    assert!(
        r.corruptions_injected > 0,
        "{system}/flip: flips never fired: {r:?}"
    );
    assert_eq!(
        r.corruptions_detected, r.corruptions_injected,
        "{system}/flip: every injected flip must be detected: {r:?}"
    );
    assert!(
        r.corruptions_repaired + r.aborted_corrupt > 0,
        "{system}/flip: corrupt ops must settle as repaired or aborted: {r:?}"
    );
}

// ---------------------------------------------------------------------
// PRISM-KV
// ---------------------------------------------------------------------

fn kv_run(plan: &FaultPlan, read_fraction: f64, rot_live_entry: bool) -> (RunResult, (u64, u64)) {
    let mut config = PrismKvConfig::paper(KEYS, VALUE);
    config.classes[0].count += 4_096;
    let server = PrismKvServer::new(&config);
    kv_exp::preload_prism(&server, KEYS, VALUE);
    let mut plan = plan.clone();
    if rot_live_entry {
        // Target the first occupied slot's live entry so the rot lands
        // on bytes a GET will actually fetch and checksum.
        let arena = server.server().arena();
        let (ptr, bound) = (0..server.view().capacity)
            .find_map(|i| {
                let slot = server.view().slot_addr(i);
                let ptr = arena.read_u64(slot).ok()?;
                if ptr == 0 {
                    return None;
                }
                Some((ptr, arena.read_u64(slot + 8).ok()?))
            })
            .expect("preloaded store has a live entry");
        plan = plan.with_rot(0, ROT_AT, ptr, bound, 3);
    }
    let servers = vec![Arc::clone(server.server())];
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        integrity: Some(Arc::clone(&integrity)),
        ..RecoveryHooks::default()
    };
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        4,
        &mut |i| {
            Box::new(PrismKvAdapter::new(
                server.open_client().with_integrity(Arc::clone(&integrity)),
                YcsbConfig {
                    dist: KeyDist::uniform(KEYS),
                    read_fraction,
                    value_len: VALUE,
                },
                SimRng::new(SEED ^ ((i as u64 + 1) * 7)),
            ))
        },
        WARMUP,
        MEASURE,
        SEED,
        &plan,
        &hooks,
    );
    (r, server.scrub())
}

#[test]
fn kv_flip_cell_detects_and_settles_every_flip() {
    let plan = base_plan(SEED ^ 1).with_flips(0.02, 0.02);
    let (r, (_, corrupt)) = kv_run(&plan, 0.5, false);
    assert_flip_conservation("kv", &r);
    assert_eq!(corrupt, 0, "flips never touch memory; scrub must be clean");

    let (r2, _) = kv_run(&plan, 0.5, false);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

#[test]
fn kv_torn_cell_orphans_every_torn_entry() {
    let plan = torn_windows(base_plan(SEED ^ 2), 0);
    let (r, (live, corrupt)) = kv_run(&plan, 0.3, false);
    assert!(r.tput_ops > 0.0, "kv/torn: no progress: {r:?}");
    assert!(
        r.corruptions_injected > 0,
        "kv/torn: torn writes never fired: {r:?}"
    );
    // A torn PUT truncates the chain before the install CAS, so the
    // half-written entry is never published: everything a reader can
    // reach still checksums.
    assert!(live > 0, "store must still hold live entries");
    assert_eq!(
        corrupt, 0,
        "torn entries must be orphaned, never visible: {r:?}"
    );
}

#[test]
fn kv_rot_cell_rot_is_detected_and_aborts_cleanly() {
    let plan = base_plan(SEED ^ 3).with_crash(0, CRASH_FROM, CRASH_UNTIL);
    // Read-only, so the damage cannot be healed by an overwrite: every
    // GET of the rotted key must detect, exhaust its bounded re-reads,
    // and abort — and the scrub still sees the damage afterwards.
    let (r, (_, corrupt)) = kv_run(&plan, 1.0, true);
    assert!(r.tput_ops > 0.0, "kv/rot: no progress: {r:?}");
    assert_eq!(r.corruptions_injected, 1, "one rot event: {r:?}");
    assert!(
        r.corruptions_detected > 0,
        "kv/rot: rotted entry reads must fail the CRC: {r:?}"
    );
    assert!(
        r.aborted_corrupt > 0,
        "kv/rot: persistent rot must abort GETs cleanly: {r:?}"
    );
    assert!(
        corrupt > 0,
        "kv/rot: unhealed damage must stay detectable to the scrub: {r:?}"
    );

    let (r2, _) = kv_run(&plan, 1.0, true);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

// ---------------------------------------------------------------------
// Pilaf
// ---------------------------------------------------------------------

fn pilaf_run(
    plan: &FaultPlan,
    read_fraction: f64,
    rot_live_extent: bool,
) -> (RunResult, (u64, u64)) {
    let config = PilafConfig::paper(KEYS, VALUE);
    let server = PilafServer::new(&config);
    kv_exp::preload_pilaf(&server, KEYS, VALUE);
    let mut plan = plan.clone();
    if rot_live_extent {
        let arena = server.server().arena();
        let (ptr, size) = (0..server.view().capacity)
            .find_map(|i| {
                let e = arena.read(server.view().entry_addr(i), 16).ok()?;
                let ptr = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
                if ptr == 0 {
                    return None;
                }
                Some((
                    ptr,
                    u64::from_le_bytes(e[8..16].try_into().expect("8 bytes")),
                ))
            })
            .expect("preloaded store has a live extent");
        plan = plan.with_rot(0, ROT_AT, ptr, size, 3);
    }
    let servers = vec![Arc::clone(server.server())];
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        integrity: Some(Arc::clone(&integrity)),
        ..RecoveryHooks::default()
    };
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        4,
        &mut |i| {
            Box::new(PilafAdapter::new(
                server.open_client().with_integrity(Arc::clone(&integrity)),
                YcsbConfig {
                    dist: KeyDist::uniform(KEYS),
                    read_fraction,
                    value_len: VALUE,
                },
                SimRng::new(SEED ^ ((i as u64 + 1) * 7)),
            ))
        },
        WARMUP,
        MEASURE,
        SEED,
        &plan,
        &hooks,
    );
    (r, server.scrub())
}

#[test]
fn pilaf_flip_cell_detects_and_settles_every_flip() {
    let plan = base_plan(SEED ^ 4).with_flips(0.02, 0.02);
    // Read-only: a Pilaf GET racing a concurrent PUT fails its data CRC
    // benignly (the entry moved between the two one-sided READs), which
    // the client cannot tell apart from corruption — it would inflate
    // `detected` past `injected`. Reads alone keep the equality exact.
    let (r, (_, corrupt)) = pilaf_run(&plan, 1.0, false);
    assert_flip_conservation("pilaf", &r);
    assert_eq!(corrupt, 0, "flips never touch memory; scrub must be clean");

    let (r2, _) = pilaf_run(&plan, 1.0, false);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

#[test]
fn pilaf_torn_cell_rpc_writes_are_immune() {
    // Pilaf writes travel as RPCs the server applies atomically — there
    // is no multi-line one-sided WRITE to tear, so the mode cannot fire
    // even when enabled. The cell documents that design difference.
    let plan = base_plan(SEED ^ 5)
        .with_crash(0, CRASH_FROM, CRASH_UNTIL)
        .with_torn_writes(0.5);
    let (r, (live, corrupt)) = pilaf_run(&plan, 0.3, false);
    assert!(r.tput_ops > 0.0, "pilaf/torn: no progress: {r:?}");
    assert_eq!(
        r.corruptions_injected, 0,
        "pilaf/torn: RPC writes carry no tearable payload: {r:?}"
    );
    assert!(live > 0, "store must still hold live entries");
    assert_eq!(corrupt, 0, "scrub must be clean: {r:?}");
}

#[test]
fn pilaf_rot_cell_rot_is_detected_and_aborts_cleanly() {
    let plan = base_plan(SEED ^ 6).with_crash(0, CRASH_FROM, CRASH_UNTIL);
    let (r, (_, corrupt)) = pilaf_run(&plan, 1.0, true);
    assert!(r.tput_ops > 0.0, "pilaf/rot: no progress: {r:?}");
    assert_eq!(r.corruptions_injected, 1, "one rot event: {r:?}");
    assert!(
        r.corruptions_detected > 0,
        "pilaf/rot: rotted extent reads must fail the data CRC: {r:?}"
    );
    assert!(
        r.aborted_corrupt > 0,
        "pilaf/rot: persistent rot must abort GETs cleanly: {r:?}"
    );
    assert!(
        corrupt > 0,
        "pilaf/rot: unhealed damage must stay detectable to the scrub: {r:?}"
    );

    let (r2, _) = pilaf_run(&plan, 1.0, true);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

// ---------------------------------------------------------------------
// PRISM-RS
// ---------------------------------------------------------------------

const BLOCKS: u64 = 8;

fn rs_run(plan: &FaultPlan, write_fraction: f64) -> (RunResult, Arc<RsCluster>) {
    let mut config = RsConfig::paper(BLOCKS, VALUE as u64);
    config.spare_buffers += 4_096;
    let cluster = Arc::new(RsCluster::new(3, &config));
    let servers: Vec<_> = (0..3)
        .map(|r| Arc::clone(cluster.replica(r).server()))
        .collect();
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        integrity: Some(Arc::clone(&integrity)),
        ..RecoveryHooks::default()
    };
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        4,
        &mut |_| {
            Box::new(PrismRsAdapter::new(
                cluster.open_client().with_integrity(Arc::clone(&integrity)),
                KeyDist::uniform(BLOCKS),
                VALUE,
                write_fraction,
            ))
        },
        WARMUP,
        MEASURE,
        SEED,
        plan,
        &hooks,
    );
    (r, cluster)
}

#[test]
fn rs_flip_cell_detects_and_settles_every_flip() {
    let plan = base_plan(SEED ^ 7).with_flips(0.02, 0.02);
    let (r, _) = rs_run(&plan, 0.5);
    assert_flip_conservation("rs", &r);

    let (r2, _) = rs_run(&plan, 0.5);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

#[test]
fn rs_torn_cell_orphans_every_torn_block_image() {
    let plan = base_plan(SEED ^ 8)
        .with_crash(1, CRASH_FROM, CRASH_UNTIL)
        .with_torn_writes(0.5);
    let (r, cluster) = rs_run(&plan, 0.5);
    assert!(r.tput_ops > 0.0, "rs/torn: no progress: {r:?}");
    assert!(
        r.corruptions_injected > 0,
        "rs/torn: torn writes never fired: {r:?}"
    );
    // Torn block images are written into spare buffers whose install
    // CAS was dropped with the chain tail: the metadata never points at
    // them, so a scrub finds nothing to repair.
    for i in 0..3 {
        let (ok, repaired) = cluster.scrub(i);
        assert_eq!(
            (ok, repaired),
            (BLOCKS, 0),
            "rs/torn: replica {i} must hold only intact published blocks: {r:?}"
        );
    }
}

#[test]
fn rs_rot_cell_masks_then_heals_by_quorum_read_repair() {
    // Rot replica 1's first live block image (tag | crc | value) inside
    // its crash window. Read-only clients then detect the bad copy,
    // mask it, and complete from the healthy quorum; the post-run scrub
    // heals the replica from its peers.
    let mut config = RsConfig::paper(BLOCKS, VALUE as u64);
    config.spare_buffers += 4_096;
    let probe = RsCluster::new(3, &config);
    let (pool_base, _) = probe.replica(1).pool_range();
    let plan = base_plan(SEED ^ 9)
        .with_crash(1, CRASH_FROM, CRASH_UNTIL)
        .with_rot(1, ROT_AT, pool_base, BUF_HDR + VALUE as u64, 3);
    let (r, cluster) = rs_run(&plan, 0.0);
    assert!(r.tput_ops > 0.0, "rs/rot: no progress: {r:?}");
    assert_eq!(r.corruptions_injected, 1, "one rot event: {r:?}");
    assert!(
        r.corruptions_detected > 0,
        "rs/rot: the bad copy must fail its block CRC on read: {r:?}"
    );
    assert!(
        r.corruptions_repaired > 0,
        "rs/rot: reads must complete by masking the bad copy: {r:?}"
    );
    let (_, repaired) = cluster.scrub(1);
    assert!(
        repaired > 0,
        "rs/rot: the scrub must heal the rotted block from its peers"
    );
    assert_eq!(
        cluster.scrub(1),
        (BLOCKS, 0),
        "rs/rot: a second scrub finds nothing left to repair"
    );
    assert!(cluster.scrub_repairs() > 0);

    let (r2, _) = rs_run(&plan, 0.0);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

// ---------------------------------------------------------------------
// PRISM-TX
// ---------------------------------------------------------------------

fn tx_run(plan: &FaultPlan) -> (RunResult, Arc<TxCluster>) {
    let mut config = TxConfig::paper(KEYS, VALUE as u64);
    config.spare_buffers += 4_096;
    let cluster = Arc::new(TxCluster::new(1, &config));
    let servers = vec![Arc::clone(cluster.shard(0).server())];
    let integrity = Arc::new(IntegrityStats::new());
    // The periodic cooperative-termination sweep matters here: a
    // reply-leg flip can corrupt the ack of an executed lock CAS, so
    // the client holds a prepare it does not know about. The sweep
    // reclaims it exactly as it reclaims a crashed client's.
    let hooks = RecoveryHooks {
        integrity: Some(Arc::clone(&integrity)),
        sweep: Some((SimDuration::micros(150), {
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i| {
                cluster.sweep_shard(i);
            })
        })),
        ..RecoveryHooks::default()
    };
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        4,
        &mut |i| {
            Box::new(PrismTxAdapter::new(
                cluster.open_client().with_integrity(Arc::clone(&integrity)),
                TxnGen::new(
                    KeyDist::uniform(KEYS),
                    1,
                    VALUE,
                    SimRng::new(SEED ^ ((i as u64 + 1) * 31)),
                ),
            ))
        },
        WARMUP,
        MEASURE,
        SEED,
        plan,
        &hooks,
    );
    (r, cluster)
}

#[test]
fn tx_flip_cell_detects_and_settles_every_flip() {
    let plan = base_plan(SEED ^ 10).with_flips(0.02, 0.02);
    let (r, _) = tx_run(&plan);
    assert_flip_conservation("tx", &r);

    let (r2, _) = tx_run(&plan);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

#[test]
fn tx_torn_cell_orphans_every_torn_version() {
    let plan = torn_windows(base_plan(SEED ^ 11), 0);
    let (r, cluster) = tx_run(&plan);
    assert!(r.tput_ops > 0.0, "tx/torn: no progress: {r:?}");
    assert!(
        r.corruptions_injected > 0,
        "tx/torn: torn writes never fired: {r:?}"
    );
    // Commit writes version images out of place; tearing the chain
    // drops the slot install, so every published version checksums.
    let (ok, corrupt) = cluster.scrub(0);
    assert_eq!(ok, KEYS, "tx/torn: every key's published version intact");
    assert_eq!(
        corrupt, 0,
        "tx/torn: torn versions must be orphaned, never visible: {r:?}"
    );
}

#[test]
fn tx_rot_cell_rot_aborts_transactions_cleanly() {
    // Rot key 0's published version image inside the crash window.
    // Every transaction touching key 0 reads before it writes, so the
    // first access detects the bad CRC and aborts — the damage can
    // never be laundered into a commit.
    // The probe must match tx_run's config exactly — the spare-buffer
    // count shifts the pool layout, and with it the probed address.
    let mut config = TxConfig::paper(KEYS, VALUE as u64);
    config.spare_buffers += 4_096;
    let probe = TxCluster::new(1, &config);
    let arena_probe = probe.shard(0).server().arena();
    let buf = arena_probe
        .read_u64(probe.shard(0).view().slot(0) + 24)
        .expect("slot word in arena");
    let len = probe.shard(0).view().buf_len();
    // The crash window opens before any commit can land: commits move
    // versions out of place, and a commit on key 0 would strand the
    // probed seed buffer before the rot event reaches it.
    let plan = base_plan(SEED ^ 12)
        .with_crash(0, SimTime::from_nanos(2_000), CRASH_UNTIL)
        .with_rot(0, ROT_AT, buf, len, 3);
    let (r, cluster) = tx_run(&plan);
    assert!(r.tput_ops > 0.0, "tx/rot: no progress: {r:?}");
    assert_eq!(r.corruptions_injected, 1, "one rot event: {r:?}");
    assert!(
        r.corruptions_detected > 0,
        "tx/rot: reads of the rotted version must fail its CRC: {r:?}"
    );
    assert!(
        r.aborted_corrupt > 0,
        "tx/rot: transactions over rotted data must abort cleanly: {r:?}"
    );
    let (_, corrupt) = cluster.scrub(0);
    assert!(
        corrupt > 0,
        "tx/rot: unhealed damage must stay detectable to the scrub: {r:?}"
    );

    let (r2, _) = tx_run(&plan);
    assert_eq!(key(&r), key(&r2), "same-seed replay must be bit-exact");
}

// ---------------------------------------------------------------------
// No-corruption regression
// ---------------------------------------------------------------------

/// A fault plan with every corruption knob explicitly zeroed must run
/// bit-identically to one where the knobs were never mentioned: the
/// corruption machinery draws from dedicated RNG streams and a zeroed
/// knob never touches them.
#[test]
fn zeroed_corruption_knobs_do_not_perturb_a_faulted_run() {
    let bare = base_plan(SEED ^ 13)
        .with_loss(0.02, 0.01)
        .with_crash(0, CRASH_FROM, CRASH_UNTIL);
    let zeroed = bare.clone().with_flips(0.0, 0.0).with_torn_writes(0.0);
    let (a, _) = kv_run(&bare, 0.5, false);
    let (b, _) = kv_run(&zeroed, 0.5, false);
    assert_eq!(
        key(&a),
        key(&b),
        "zeroed corruption knobs must be bit-identical to absent ones"
    );
    assert_eq!(a.corruptions_injected, 0);
    assert_eq!(
        a.corruptions_detected + a.corruptions_repaired + a.aborted_corrupt,
        0
    );
}
