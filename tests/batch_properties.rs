//! Property-based tests for the doorbell-batch wire format: a
//! [`Request::Batch`] / [`Reply::Batch`] is one flat submission list,
//! and any flat batch must survive encode/decode unchanged — including
//! the degenerate shapes a fuzzer loves (empty batches, zero-length
//! payloads, and the u16 count limit). Runs on the in-repo
//! `prism-testkit` harness; failures print a `PRISM_TEST_SEED` for
//! exact replay.

use prism_core::builder::ops;
use prism_core::msg::{Reply, Request, Verb};
use prism_core::{OpResult, OpStatus};
use prism_rdma::RdmaError;
use prism_testkit::{for_all, gens, Config, Gen};

/// One batch member: any non-batch request, biased toward small
/// payloads (including empty ones).
fn arb_request_member() -> Gen<Request> {
    gens::one_of(vec![
        gens::vec(gens::u8s(), 0..32).map(Request::Rpc),
        gens::t3(gens::u64s(), gens::u32s(), gens::u32s())
            .map(|(addr, len, rkey)| Request::Verb(Verb::Read { addr, len, rkey })),
        gens::t3(gens::u64s(), gens::u32s(), gens::vec(gens::u8s(), 0..32))
            .map(|(addr, rkey, data)| Request::Verb(Verb::Write { addr, data, rkey })),
        gens::t4(gens::u64s(), gens::u64s(), gens::u64s(), gens::u32s()).map(
            |(addr, compare, swap, rkey)| {
                Request::Verb(Verb::Cas64 {
                    addr,
                    compare,
                    swap,
                    rkey,
                })
            },
        ),
    ])
}

/// One reply member: any non-batch reply, including chain responses and
/// verb errors.
fn arb_reply_member() -> Gen<Reply> {
    let result = gens::t2(
        gens::choice(vec![OpStatus::Ok, OpStatus::CasFailed]),
        gens::vec(gens::u8s(), 0..32),
    )
    .map(|(status, data)| OpResult { status, data });
    gens::one_of(vec![
        gens::vec(gens::u8s(), 0..32).map(Reply::Rpc),
        gens::vec(gens::u8s(), 0..32).map(|d| Reply::Verb(Ok(d))),
        gens::choice(vec![
            RdmaError::ReceiverNotReady,
            RdmaError::InvalidRkey(7),
            RdmaError::Misaligned {
                addr: 13,
                required: 8,
            },
        ])
        .map(|e| Reply::Verb(Err(e))),
        gens::vec(result, 0..4).map(Reply::Chain),
    ])
}

/// A PRISM chain request with a mix of op shapes, so the streamed chain
/// encoder (`encode_chain_into` writing straight into the frame) is
/// exercised against real op layouts, not just the RPC/verb bodies.
fn arb_chain_request() -> Gen<Request> {
    let op = gens::one_of(vec![
        gens::t3(gens::u64s(), gens::u32s(), gens::u32s())
            .map(|(addr, len, rkey)| ops::read(addr, len, rkey)),
        gens::t3(gens::u64s(), gens::u32s(), gens::vec(gens::u8s(), 0..16))
            .map(|(addr, rkey, data)| ops::write(addr, data, rkey)),
        gens::t4(gens::u64s(), gens::u32s(), gens::u64s(), gens::u64s())
            .map(|(target, rkey, compare, swap)| ops::cas64(target, rkey, compare, swap)),
    ]);
    gens::vec(op, 0..5).map(Request::Chain)
}

/// The borrowed-frame encoders are byte-identical to the owned path:
/// `encode_into` after an arbitrary prefix produces exactly
/// `prefix ++ encode()` for every request and reply shape — including
/// chains, whose bodies now stream straight into the frame instead of
/// passing through an intermediate `Vec` — and the appended frame
/// decodes back to the original message.
#[test]
fn borrowed_encoders_match_owned_encoders() {
    let req_gen = gens::one_of(vec![
        arb_request_member(),
        arb_chain_request(),
        gens::vec(arb_request_member(), 0..4).map(Request::Batch),
    ]);
    let gen = gens::t3(req_gen, arb_reply_member(), gens::vec(gens::u8s(), 0..16));
    for_all(
        "borrowed_encoders_match_owned_encoders",
        &Config::with_cases(256),
        &gen,
        |(req, reply, prefix)| {
            let owned = req.encode().expect("owned encode");
            let mut buf = prefix.clone();
            req.encode_into(&mut buf).expect("encode_into");
            assert_eq!(&buf[..prefix.len()], &prefix[..], "prefix clobbered");
            assert_eq!(&buf[prefix.len()..], &owned[..], "request frames diverge");
            assert_eq!(&Request::decode(&buf[prefix.len()..]).expect("decode"), req);

            let owned = reply.encode().expect("owned encode");
            let mut buf = prefix.clone();
            reply.encode_into(&mut buf).expect("encode_into");
            assert_eq!(&buf[prefix.len()..], &owned[..], "reply frames diverge");
            assert_eq!(&Reply::decode(&buf[prefix.len()..]).expect("decode"), reply);
        },
    );
}

/// Every single-byte mutation of a chain-bearing frame surfaces as the
/// *typed* corrupt error on the borrowed decode path — the CRC trailer
/// is verified before any body bytes are borrowed, so a damaged frame
/// can never leak a partially-parsed chain or a generic parse error.
#[test]
fn mutated_chain_frames_decode_to_typed_corrupt() {
    let gen = gens::t3(
        arb_chain_request(),
        gens::u64s(),
        gens::u8s().map(|m| m | 1),
    );
    for_all(
        "mutated_chain_frames_decode_to_typed_corrupt",
        &Config::with_cases(256),
        &gen,
        |(req, pos, mask)| {
            let mut bytes = req.encode().expect("encode");
            let at = (*pos as usize) % bytes.len();
            bytes[at] ^= mask;
            let err = Request::decode(&bytes).expect_err("mutated frame decoded");
            assert!(err.is_corrupt(), "expected typed corrupt, got {err:?}");
        },
    );
}

/// Any flat request batch survives encode/decode unchanged.
#[test]
fn request_batch_round_trips() {
    let gen = gens::vec(arb_request_member(), 0..6).map(Request::Batch);
    for_all(
        "request_batch_round_trips",
        &Config::with_cases(256),
        &gen,
        |batch| {
            let bytes = batch.encode().expect("encode");
            let decoded = Request::decode(&bytes).expect("decode");
            assert_eq!(&decoded, batch);
        },
    );
}

/// Any flat reply batch survives encode/decode unchanged.
#[test]
fn reply_batch_round_trips() {
    let gen = gens::vec(arb_reply_member(), 0..6).map(Reply::Batch);
    for_all(
        "reply_batch_round_trips",
        &Config::with_cases(256),
        &gen,
        |batch| {
            let bytes = batch.encode().expect("encode");
            let decoded = Reply::decode(&bytes).expect("decode");
            assert_eq!(&decoded, batch);
        },
    );
}

/// The degenerate shapes: an empty batch, members with zero-length
/// payloads, and a batch at exactly the u16 count limit all round-trip;
/// one past the limit is a clean encode error, not a truncated count.
#[test]
fn batch_boundary_shapes() {
    // Empty batch.
    let empty_req = Request::Batch(Vec::new());
    assert_eq!(
        Request::decode(&empty_req.encode().expect("encode")).expect("decode"),
        empty_req
    );
    let empty_reply = Reply::Batch(Vec::new());
    assert_eq!(
        Reply::decode(&empty_reply.encode().expect("encode")).expect("decode"),
        empty_reply
    );

    // Zero-length member payloads.
    let hollow = Request::Batch(vec![
        Request::Rpc(Vec::new()),
        Request::Verb(Verb::Write {
            addr: 0,
            data: Vec::new(),
            rkey: 0,
        }),
    ]);
    assert_eq!(
        Request::decode(&hollow.encode().expect("encode")).expect("decode"),
        hollow
    );
    let hollow_reply = Reply::Batch(vec![
        Reply::Rpc(Vec::new()),
        Reply::Verb(Ok(Vec::new())),
        Reply::Chain(Vec::new()),
    ]);
    assert_eq!(
        Reply::decode(&hollow_reply.encode().expect("encode")).expect("decode"),
        hollow_reply
    );

    // Exactly u16::MAX tiny members: the count prefix is saturated but
    // valid.
    let max = Request::Batch(vec![Request::Rpc(Vec::new()); u16::MAX as usize]);
    assert_eq!(
        Request::decode(&max.encode().expect("encode")).expect("decode"),
        max
    );

    // One past the limit cannot be represented and must fail to encode.
    let over = Request::Batch(vec![Request::Rpc(Vec::new()); u16::MAX as usize + 1]);
    assert!(over.encode().is_err(), "overlong batch must not encode");
    let over_reply = Reply::Batch(vec![Reply::Rpc(Vec::new()); u16::MAX as usize + 1]);
    assert!(
        over_reply.encode().is_err(),
        "overlong batch must not encode"
    );
}

/// Mutated frames never decode: take a valid sealed frame, XOR 1–3
/// distinct bytes with nonzero masks, and decoding must return a clean
/// error — no panic, no over-read, and never a silently different
/// message. The frame CRCs (header and payload) are what make this
/// hold for *every* mutation, not just structurally invalid ones.
#[test]
fn mutated_frames_are_rejected_not_misread() {
    let gen = gens::t2(
        gens::vec(arb_request_member(), 0..4).map(Request::Batch),
        gens::vec(gens::t2(gens::u64s(), gens::u8s().map(|m| m | 1)), 1..4),
    );
    for_all(
        "mutated_request_frames_are_rejected",
        &Config::with_cases(256),
        &gen,
        |(batch, mutations)| {
            let clean = batch.encode().expect("encode");
            let mut bytes = clean.clone();
            let mut hit = Vec::new();
            for (pos, mask) in mutations {
                let at = (*pos as usize) % bytes.len();
                // Distinct positions with nonzero masks guarantee the
                // mutated frame differs from the original.
                if hit.contains(&at) {
                    continue;
                }
                hit.push(at);
                bytes[at] ^= mask;
            }
            assert!(
                Request::decode(&bytes).is_err(),
                "mutated frame decoded: flipped {hit:?} of {} bytes",
                bytes.len()
            );
            // The pristine copy still decodes: the mutation, not the
            // frame, was at fault.
            assert_eq!(Request::decode(&clean).expect("clean decode"), *batch);
        },
    );

    let gen = gens::t2(
        gens::vec(arb_reply_member(), 0..4).map(Reply::Batch),
        gens::vec(gens::t2(gens::u64s(), gens::u8s().map(|m| m | 1)), 1..4),
    );
    for_all(
        "mutated_reply_frames_are_rejected",
        &Config::with_cases(256),
        &gen,
        |(batch, mutations)| {
            let clean = batch.encode().expect("encode");
            let mut bytes = clean.clone();
            let mut hit = Vec::new();
            for (pos, mask) in mutations {
                let at = (*pos as usize) % bytes.len();
                if hit.contains(&at) {
                    continue;
                }
                hit.push(at);
                bytes[at] ^= mask;
            }
            assert!(
                Reply::decode(&bytes).is_err(),
                "mutated frame decoded: flipped {hit:?} of {} bytes",
                bytes.len()
            );
            assert_eq!(Reply::decode(&clean).expect("clean decode"), *batch);
        },
    );
}

/// Batch decoding never panics on arbitrary bytes, even bytes that
/// start with a plausible batch marker and count.
#[test]
fn batch_decode_is_total() {
    let gen = gens::vec(gens::u8s(), 0..64).map(|mut tail| {
        let mut bytes = vec![3u8]; // MSG_BATCH marker
        bytes.append(&mut tail);
        bytes
    });
    for_all(
        "batch_decode_is_total",
        &Config::with_cases(256),
        &gen,
        |bytes| {
            let _ = Request::decode(bytes);
            let _ = Reply::decode(bytes);
        },
    );
}
