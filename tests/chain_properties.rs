//! Property-based tests over the PRISM core: wire-format round trips,
//! enhanced-CAS algebra against a reference model, free-list integrity,
//! and conditional-chain semantics.

use proptest::prelude::*;

use prism_core::builder::ops;
use prism_core::op::{DataArg, FreeListId, PrismOp, Redirect, MAX_CAS_LEN};
use prism_core::server::PrismServer;
use prism_core::value::{cas_compare, cas_swap, CasMode};
use prism_core::wire;
use prism_core::OpStatus;
use prism_rdma::region::AccessFlags;

fn arb_mode() -> impl Strategy<Value = CasMode> {
    prop_oneof![
        Just(CasMode::Eq),
        Just(CasMode::Ne),
        Just(CasMode::Lt),
        Just(CasMode::Le),
        Just(CasMode::Gt),
        Just(CasMode::Ge),
    ]
}

fn arb_redirect() -> impl Strategy<Value = Option<Redirect>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<u32>()).prop_map(|(addr, rkey)| Some(Redirect { addr, rkey })),
    ]
}

fn arb_data_arg() -> impl Strategy<Value = DataArg> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(DataArg::Inline),
        (any::<u64>(), any::<u32>()).prop_map(|(addr, rkey)| DataArg::Remote { addr, rkey }),
    ]
}

fn arb_op() -> impl Strategy<Value = PrismOp> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            arb_redirect()
        )
            .prop_map(
                |(addr, len, rkey, indirect, bounded, conditional, redirect)| PrismOp::Read {
                    addr,
                    len,
                    rkey,
                    indirect,
                    bounded,
                    conditional,
                    redirect,
                }
            ),
        (
            any::<u64>(),
            any::<u32>(),
            arb_data_arg(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(
                |(addr, rkey, data, len, addr_indirect, addr_bounded, conditional)| {
                    PrismOp::Write {
                        addr,
                        rkey,
                        data,
                        len,
                        addr_indirect,
                        addr_bounded,
                        conditional,
                    }
                }
            ),
        (
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..128),
            any::<bool>(),
            arb_redirect()
        )
            .prop_map(|(fl, data, conditional, redirect)| PrismOp::Allocate {
                freelist: FreeListId(fl),
                data,
                conditional,
                redirect,
            }),
        (
            arb_mode(),
            any::<u64>(),
            any::<u32>(),
            arb_data_arg(),
            arb_data_arg(),
            0u32..=32,
            proptest::collection::vec(any::<u8>(), MAX_CAS_LEN),
            proptest::collection::vec(any::<u8>(), MAX_CAS_LEN),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(
                |(mode, target, rkey, compare, swap, len, cm, sm, target_indirect, conditional)| {
                    PrismOp::Cas {
                        mode,
                        target,
                        rkey,
                        compare,
                        swap,
                        len,
                        compare_mask: cm.try_into().expect("sized"),
                        swap_mask: sm.try_into().expect("sized"),
                        target_indirect,
                        conditional,
                    }
                }
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any chain survives encode/decode unchanged.
    #[test]
    fn wire_round_trips(chain in proptest::collection::vec(arb_op(), 0..8)) {
        let bytes = wire::encode_chain(&chain);
        let decoded = wire::decode_chain(&bytes).expect("decode");
        prop_assert_eq!(decoded, chain);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn wire_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode_chain(&bytes);
        let _ = wire::decode_response(&bytes);
    }

    /// The CAS comparison agrees with a big-integer reference model.
    #[test]
    fn cas_compare_matches_reference(
        mode in arb_mode(),
        target in proptest::collection::vec(any::<u8>(), 16),
        data in proptest::collection::vec(any::<u8>(), 16),
        mask in proptest::collection::vec(any::<u8>(), 16),
    ) {
        let masked = |v: &[u8]| -> u128 {
            let mut out = [0u8; 16];
            for i in 0..16 { out[i] = v[i] & mask[i]; }
            u128::from_be_bytes(out)
        };
        let (t, d) = (masked(&target), masked(&data));
        let expected = match mode {
            CasMode::Eq => t == d,
            CasMode::Ne => t != d,
            CasMode::Lt => t < d,
            CasMode::Le => t <= d,
            CasMode::Gt => t > d,
            CasMode::Ge => t >= d,
        };
        prop_assert_eq!(cas_compare(mode, &target, &data, &mask), expected);
    }

    /// The swap only changes masked bits, and is idempotent.
    #[test]
    fn cas_swap_respects_mask(
        target in proptest::collection::vec(any::<u8>(), 16),
        data in proptest::collection::vec(any::<u8>(), 16),
        mask in proptest::collection::vec(any::<u8>(), 16),
    ) {
        let mut after = target.clone();
        cas_swap(&mut after, &data, &mask);
        for i in 0..16 {
            prop_assert_eq!(after[i] & !mask[i], target[i] & !mask[i], "unmasked bits changed");
            prop_assert_eq!(after[i] & mask[i], data[i] & mask[i], "masked bits not swapped");
        }
        let mut twice = after.clone();
        cas_swap(&mut twice, &data, &mask);
        prop_assert_eq!(twice, after, "swap must be idempotent");
    }

    /// Random conditional chains of CAS ops on one word behave exactly
    /// like a sequential reference interpreter.
    #[test]
    fn conditional_chains_match_reference(
        initial in any::<u64>(),
        steps in proptest::collection::vec((arb_mode(), any::<u64>(), any::<u64>(), any::<bool>()), 1..10),
    ) {
        let server = PrismServer::new(1 << 16);
        let (addr, rkey) = server.carve_region(64, 64, AccessFlags::FULL);
        server.arena().write(addr, &initial.to_be_bytes()).unwrap();

        let chain: Vec<PrismOp> = steps
            .iter()
            .map(|&(mode, cmp, swp, conditional)| {
                let mut op = ops::cas(
                    mode,
                    addr,
                    rkey.0,
                    cmp.to_be_bytes().to_vec(),
                    swp.to_be_bytes().to_vec(),
                    8,
                    prism_core::op::full_mask(8),
                    prism_core::op::full_mask(8),
                );
                if conditional {
                    op = op.conditional();
                }
                op
            })
            .collect();
        let results = server.execute_chain(&chain);

        // Reference interpreter.
        let mut word = initial;
        let mut prev_ok = true;
        for (i, &(mode, cmp, swp, conditional)) in steps.iter().enumerate() {
            if conditional && !prev_ok {
                prop_assert_eq!(&results[i].status, &OpStatus::Skipped, "step {}", i);
                prev_ok = false;
                continue;
            }
            let t = word.to_be_bytes();
            let c = cmp.to_be_bytes();
            let ok = cas_compare(mode, &t, &c, &[0xFF; 8]);
            if ok {
                prop_assert_eq!(&results[i].status, &OpStatus::Ok, "step {}", i);
                word = swp;
            } else {
                prop_assert_eq!(&results[i].status, &OpStatus::CasFailed, "step {}", i);
            }
            prop_assert_eq!(results[i].data.as_slice(), &t, "old value at step {}", i);
            prev_ok = ok;
        }
        let final_word = u64::from_be_bytes(
            server.arena().read(addr, 8).unwrap().try_into().unwrap(),
        );
        prop_assert_eq!(final_word, word);
    }

    /// ALLOCATE never hands out the same buffer twice while in use, for
    /// any interleaving of allocations and frees.
    #[test]
    fn allocator_integrity(script in proptest::collection::vec(any::<bool>(), 1..200)) {
        let server = PrismServer::new(1 << 18);
        let fl = FreeListId(0);
        server.setup_freelist(fl, 64, 16);
        let mut live: Vec<u64> = Vec::new();
        for alloc in script {
            if alloc {
                let r = server.execute_chain(&[ops::allocate(fl, vec![0xAB; 8])]);
                match &r[0].status {
                    OpStatus::Ok => {
                        let addr = u64::from_le_bytes(r[0].data.clone().try_into().unwrap());
                        prop_assert!(!live.contains(&addr), "double allocation of {addr:#x}");
                        live.push(addr);
                    }
                    OpStatus::Error(prism_rdma::RdmaError::ReceiverNotReady) => {
                        prop_assert_eq!(live.len(), 16, "RNR only when exhausted");
                    }
                    other => prop_assert!(false, "unexpected {other:?}"),
                }
            } else if let Some(addr) = live.pop() {
                server.repost(fl, [addr]).unwrap();
            }
        }
    }
}
