//! Property-based tests over the PRISM core: wire-format round trips,
//! enhanced-CAS algebra against a reference model, free-list integrity,
//! and conditional-chain semantics. Runs on the in-repo `prism-testkit`
//! harness; failures print a `PRISM_TEST_SEED` for exact replay.

use prism_core::builder::ops;
use prism_core::op::{DataArg, FreeListId, PrismOp, Redirect, MAX_CAS_LEN};
use prism_core::server::PrismServer;
use prism_core::value::{cas_compare, cas_swap, CasMode};
use prism_core::wire;
use prism_core::OpStatus;
use prism_rdma::region::AccessFlags;
use prism_testkit::{for_all, gens, Config, Gen};

fn arb_mode() -> Gen<CasMode> {
    gens::choice(vec![
        CasMode::Eq,
        CasMode::Ne,
        CasMode::Lt,
        CasMode::Le,
        CasMode::Gt,
        CasMode::Ge,
    ])
}

fn arb_redirect() -> Gen<Option<Redirect>> {
    gens::one_of(vec![
        gens::constant(None),
        gens::t2(gens::u64s(), gens::u32s()).map(|(addr, rkey)| Some(Redirect { addr, rkey })),
    ])
}

fn arb_data_arg() -> Gen<DataArg> {
    gens::one_of(vec![
        gens::vec(gens::u8s(), 0..64).map(DataArg::Inline),
        gens::t2(gens::u64s(), gens::u32s()).map(|(addr, rkey)| DataArg::Remote { addr, rkey }),
    ])
}

fn arb_op() -> Gen<PrismOp> {
    gens::one_of(vec![
        gens::t7(
            gens::u64s(),
            gens::u32s(),
            gens::u32s(),
            gens::bools(),
            gens::bools(),
            gens::bools(),
            arb_redirect(),
        )
        .map(
            |(addr, len, rkey, indirect, bounded, conditional, redirect)| PrismOp::Read {
                addr,
                len,
                rkey,
                indirect,
                bounded,
                conditional,
                redirect,
            },
        ),
        gens::t7(
            gens::u64s(),
            gens::u32s(),
            arb_data_arg(),
            gens::u32s(),
            gens::bools(),
            gens::bools(),
            gens::bools(),
        )
        .map(
            |(addr, rkey, data, len, addr_indirect, addr_bounded, conditional)| PrismOp::Write {
                addr,
                rkey,
                data,
                len,
                addr_indirect,
                addr_bounded,
                conditional,
            },
        ),
        gens::t4(
            gens::u32s(),
            gens::vec(gens::u8s(), 0..128),
            gens::bools(),
            arb_redirect(),
        )
        .map(|(fl, data, conditional, redirect)| PrismOp::Allocate {
            freelist: FreeListId(fl),
            data,
            conditional,
            redirect,
        }),
        gens::t10(
            arb_mode(),
            gens::u64s(),
            gens::u32s(),
            arb_data_arg(),
            arb_data_arg(),
            gens::range_u32(0..33),
            gens::vec_exact(gens::u8s(), MAX_CAS_LEN),
            gens::vec_exact(gens::u8s(), MAX_CAS_LEN),
            gens::bools(),
            gens::bools(),
        )
        .map(
            |(mode, target, rkey, compare, swap, len, cm, sm, target_indirect, conditional)| {
                PrismOp::Cas {
                    mode,
                    target,
                    rkey,
                    compare,
                    swap,
                    len,
                    compare_mask: cm.try_into().expect("sized"),
                    swap_mask: sm.try_into().expect("sized"),
                    target_indirect,
                    conditional,
                }
            },
        ),
    ])
}

/// Any chain survives encode/decode unchanged.
#[test]
fn wire_round_trips() {
    let gen = gens::vec(arb_op(), 0..8);
    for_all(
        "wire_round_trips",
        &Config::with_cases(256),
        &gen,
        |chain| {
            let bytes = wire::encode_chain(chain).expect("encode");
            let decoded = wire::decode_chain(&bytes).expect("decode");
            assert_eq!(&decoded, chain);
        },
    );
}

/// Decoding never panics on arbitrary bytes.
#[test]
fn wire_decode_is_total() {
    let gen = gens::vec(gens::u8s(), 0..256);
    for_all(
        "wire_decode_is_total",
        &Config::with_cases(256),
        &gen,
        |bytes| {
            let _ = wire::decode_chain(bytes);
            let _ = wire::decode_response(bytes);
        },
    );
}

/// The CAS comparison agrees with a big-integer reference model.
#[test]
fn cas_compare_matches_reference() {
    let gen = gens::t4(
        arb_mode(),
        gens::vec_exact(gens::u8s(), 16),
        gens::vec_exact(gens::u8s(), 16),
        gens::vec_exact(gens::u8s(), 16),
    );
    for_all(
        "cas_compare_matches_reference",
        &Config::with_cases(256),
        &gen,
        |(mode, target, data, mask)| {
            let masked = |v: &[u8]| -> u128 {
                let mut out = [0u8; 16];
                for i in 0..16 {
                    out[i] = v[i] & mask[i];
                }
                u128::from_be_bytes(out)
            };
            let (t, d) = (masked(target), masked(data));
            let expected = match mode {
                CasMode::Eq => t == d,
                CasMode::Ne => t != d,
                CasMode::Lt => t < d,
                CasMode::Le => t <= d,
                CasMode::Gt => t > d,
                CasMode::Ge => t >= d,
            };
            assert_eq!(cas_compare(*mode, target, data, mask), expected);
        },
    );
}

/// The swap only changes masked bits, and is idempotent.
#[test]
fn cas_swap_respects_mask() {
    let gen = gens::t3(
        gens::vec_exact(gens::u8s(), 16),
        gens::vec_exact(gens::u8s(), 16),
        gens::vec_exact(gens::u8s(), 16),
    );
    for_all(
        "cas_swap_respects_mask",
        &Config::with_cases(256),
        &gen,
        |(target, data, mask)| {
            let mut after = target.clone();
            cas_swap(&mut after, data, mask);
            for i in 0..16 {
                assert_eq!(
                    after[i] & !mask[i],
                    target[i] & !mask[i],
                    "unmasked bits changed"
                );
                assert_eq!(
                    after[i] & mask[i],
                    data[i] & mask[i],
                    "masked bits not swapped"
                );
            }
            let mut twice = after.clone();
            cas_swap(&mut twice, data, mask);
            assert_eq!(twice, after, "swap must be idempotent");
        },
    );
}

/// Random conditional chains of CAS ops on one word behave exactly
/// like a sequential reference interpreter.
#[test]
fn conditional_chains_match_reference() {
    let gen = gens::t2(
        gens::u64s(),
        gens::vec(
            gens::t4(arb_mode(), gens::u64s(), gens::u64s(), gens::bools()),
            1..10,
        ),
    );
    for_all(
        "conditional_chains_match_reference",
        &Config::with_cases(256),
        &gen,
        |(initial, steps)| {
            let initial = *initial;
            let server = PrismServer::new(1 << 16);
            let (addr, rkey) = server.carve_region(64, 64, AccessFlags::FULL);
            server.arena().write(addr, &initial.to_be_bytes()).unwrap();

            let chain: Vec<PrismOp> = steps
                .iter()
                .map(|&(mode, cmp, swp, conditional)| {
                    let mut op = ops::cas(
                        mode,
                        addr,
                        rkey.0,
                        cmp.to_be_bytes().to_vec(),
                        swp.to_be_bytes().to_vec(),
                        8,
                        prism_core::op::full_mask(8),
                        prism_core::op::full_mask(8),
                    );
                    if conditional {
                        op = op.conditional();
                    }
                    op
                })
                .collect();
            let results = server.execute_chain(&chain);

            // Reference interpreter.
            let mut word = initial;
            let mut prev_ok = true;
            for (i, &(mode, cmp, swp, conditional)) in steps.iter().enumerate() {
                if conditional && !prev_ok {
                    assert_eq!(&results[i].status, &OpStatus::Skipped, "step {}", i);
                    prev_ok = false;
                    continue;
                }
                let t = word.to_be_bytes();
                let c = cmp.to_be_bytes();
                let ok = cas_compare(mode, &t, &c, &[0xFF; 8]);
                if ok {
                    assert_eq!(&results[i].status, &OpStatus::Ok, "step {}", i);
                    word = swp;
                } else {
                    assert_eq!(&results[i].status, &OpStatus::CasFailed, "step {}", i);
                }
                assert_eq!(results[i].data.as_slice(), &t, "old value at step {}", i);
                prev_ok = ok;
            }
            let final_word =
                u64::from_be_bytes(server.arena().read(addr, 8).unwrap().try_into().unwrap());
            assert_eq!(final_word, word);
        },
    );
}

/// ALLOCATE never hands out the same buffer twice while in use, for
/// any interleaving of allocations and frees.
#[test]
fn allocator_integrity() {
    let gen = gens::vec(gens::bools(), 1..200);
    for_all(
        "allocator_integrity",
        &Config::with_cases(256),
        &gen,
        |script| {
            let server = PrismServer::new(1 << 18);
            let fl = FreeListId(0);
            server.setup_freelist(fl, 64, 16);
            let mut live: Vec<u64> = Vec::new();
            for &alloc in script {
                if alloc {
                    let r = server.execute_chain(&[ops::allocate(fl, vec![0xAB; 8])]);
                    match &r[0].status {
                        OpStatus::Ok => {
                            let addr = u64::from_le_bytes(r[0].data.clone().try_into().unwrap());
                            assert!(!live.contains(&addr), "double allocation of {addr:#x}");
                            live.push(addr);
                        }
                        OpStatus::Error(prism_rdma::RdmaError::ReceiverNotReady) => {
                            assert_eq!(live.len(), 16, "RNR only when exhausted");
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                } else if let Some(addr) = live.pop() {
                    server.repost(fl, [addr]).unwrap();
                }
            }
        },
    );
}
