//! Chaos gate: seeded fault schedules (amnesia and recover crashes,
//! client crashes, partitions, loss, duplication, jitter, and data
//! corruption — bit flips on both legs, torn writes into crash
//! windows, plus disk faults against the durable segment tier: torn
//! log tails on crash and at-rest bit rot in sealed segments) drive
//! the real protocol stacks while complete operation histories are
//! recorded. The gate then demands proof, not survival: histories must
//! be linearizable, the recovery protocols must visibly fire (local
//! segment replay, delta quorum resyncs, cooperative-termination
//! reclaims), corruption must be caught by the CRC layers rather than
//! surface as wrong answers, nothing may stay stuck, and the same seed
//! must reproduce bit-identical results.

use std::sync::{Arc, Mutex};

use prism_core::integrity::IntegrityStats;
use prism_harness::adapters::PrismTxAdapter;
use prism_harness::chaos::{check_history, ChaosKvAdapter, ChaosRsAdapter, HistKind, HistOp};
use prism_harness::cluster::{KvCluster, RsShards};
use prism_harness::netsim::{run_closed_loop_with, RecoveryHooks, RunResult, VerbPath};
use prism_kv::prism_kv::{PrismKvConfig, PrismKvServer};
use prism_rs::prism_rs::{drive as rs_drive, RsCluster, RsConfig};
use prism_rs::RsOutcome;
use prism_simnet::fault::{ChaosSpec, FaultPlan, TailPolicy};
use prism_simnet::latency::CostModel;
use prism_simnet::rng::SimRng;
use prism_simnet::time::{SimDuration, SimTime};
use prism_tx::prism_tx::{TxCluster, TxConfig};
use prism_workload::{KeyDist, TxnGen};

/// Per-test chaos seed; `PRISM_TEST_SEED=<n>` perturbs all three (each
/// keeps a distinct XOR base) so CI exercises the gate — including its
/// bit-exact-replay assertions — at more than one point.
fn seed_or(base: u64) -> u64 {
    std::env::var("PRISM_TEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|s| s ^ base)
        .unwrap_or(base)
}

const WARMUP: SimDuration = SimDuration::from_nanos(400_000);
const MEASURE: SimDuration = SimDuration::from_nanos(2_400_000);
const HORIZON: SimDuration = SimDuration::from_nanos(2_800_000);
const BLOCKS: u64 = 8;
const VALUE: usize = 64;

fn fault_line(system: &str, r: &RunResult) {
    // The full fault-counter surface, giveups alongside the rest.
    println!(
        "{system}-chaos: tput={:.0}ops/s failed={} drops={} dups={} timeouts={} \
         retries={} giveups={} fenced={} crash_drops={} restarts={} client_restarts={} \
         corrupt={}/{}det rep={} abort={} replayed={} delta={} trunc={} tears={}",
        r.tput_ops,
        r.failed,
        r.drops,
        r.dups,
        r.timeouts,
        r.retries,
        r.giveups,
        r.fenced,
        r.crash_drops,
        r.restarts,
        r.client_restarts,
        r.corruptions_injected,
        r.corruptions_detected,
        r.corruptions_repaired,
        r.aborted_corrupt,
        r.replayed,
        r.delta_resynced,
        r.segments_truncated,
        r.disk_tears,
    );
}

fn metrics_key(r: &RunResult) -> [u64; 20] {
    [
        r.tput_ops as u64,
        r.failed,
        r.drops,
        r.dups,
        r.timeouts,
        r.retries,
        r.giveups,
        r.fenced,
        r.epoch_fenced,
        r.stale_harvested,
        r.restarts,
        r.client_restarts,
        r.corruptions_injected,
        r.corruptions_detected,
        r.corruptions_repaired,
        r.aborted_corrupt,
        r.replayed,
        r.delta_resynced,
        r.segments_truncated,
        r.disk_tears,
    ]
}

// ---------------------------------------------------------------------
// PRISM-RS: amnesia crashes with quorum rejoin
// ---------------------------------------------------------------------

fn rs_chaos(seed: u64) -> (RunResult, Vec<HistOp>, u64, u64) {
    // No extra spare-buffer provisioning: replies lost on the return leg
    // are harvested for their orphaned allocations when they finally
    // straggle in (`on_stale_reply`), so the paper's pool sizing holds
    // even under sustained loss.
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    let cluster = Arc::new(RsCluster::new(3, &config));
    let servers: Vec<_> = (0..3)
        .map(|i| Arc::clone(cluster.replica(i).server()))
        .collect();
    let history = Arc::new(Mutex::new(Vec::new()));
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        on_restart: Some({
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i| {
                cluster.amnesia_restart(i);
            })
        }),
        sweep: None,
        integrity: Some(Arc::clone(&integrity)),
        control: None,
        // Durable-tier faults: crash-window tears cut the unsynced log
        // tail right before the rejoin replays it, and scheduled rot
        // flips bits in sealed segments at rest. Replay must detect
        // both by CRC and heal the difference from peers.
        disk_tear: Some({
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i, rng| {
                cluster.replica(i).disk().tear_tail(rng);
            })
        }),
        disk_rot: Some({
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i, rng, bits| {
                cluster.replica(i).disk().rot(rng, bits);
            })
        }),
        durable: Some(Arc::clone(cluster.durable_stats())),
    };
    let spec = ChaosSpec {
        servers: 3,
        clients: 6,
        horizon: HORIZON,
        server_crashes: 2,
        amnesia_fraction: 1.0,
        client_crashes: 1,
        partitions: 1,
        drop_prob: 0.01,
        dup_prob: 0.005,
        jitter_ns: 1_000,
        flip_req_prob: 0.01,
        flip_reply_prob: 0.01,
        torn_write_prob: 0.05,
        disk_torn_prob: 0.9,
        disk_rot_events: 2,
        slowdowns: 0,
        slowdown_factor: 0,
        reply_partitions: 0,
        flaps: 0,
        tail: TailPolicy::default(),
    };
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(ChaosRsAdapter::new(
                cluster.open_client().with_integrity(Arc::clone(&integrity)),
                i,
                BLOCKS,
                VALUE,
                0.5,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    let h = history.lock().expect("history lock").clone();
    (r, h, cluster.rejoins(), cluster.resyncs())
}

#[test]
fn rs_amnesia_chaos_stays_linearizable_and_rejoins() {
    let seed = seed_or(0xC4A0_0001);
    let (r, history, rejoins, resyncs) = rs_chaos(seed);
    fault_line("rs", &r);
    assert!(r.tput_ops > 0.0, "no progress under chaos: {r:?}");
    assert!(r.restarts > 0, "no amnesia window fired: {r:?}");
    assert!(
        rejoins > 0 && resyncs > 0,
        "restarted replica must rejoin via quorum resync (rejoins={rejoins}, resyncs={resyncs})"
    );
    assert!(
        r.replayed > 0,
        "a rejoining replica must fold records back from its local segment log: {r:?}"
    );
    assert!(
        r.disk_tears > 0,
        "the crash-window tear fault was enabled but never fired: {r:?}"
    );
    assert!(!history.is_empty(), "history must be recorded");
    assert!(
        r.corruptions_injected > 0,
        "corruption modes were enabled but never fired: {r:?}"
    );
    assert!(
        r.corruptions_detected > 0,
        "injected bit flips must be detected by the frame CRCs: {r:?}"
    );
    check_history(&history).expect("RS history must be linearizable");

    // Same seed, fresh cluster: bit-exact replay, history included.
    let (r2, history2, rejoins2, resyncs2) = rs_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(history, history2, "recorded histories must be bit-exact");
    assert_eq!((rejoins, resyncs), (rejoins2, resyncs2));
}

// ---------------------------------------------------------------------
// PRISM-RS sharded: amnesia on one shard of a 2-group cluster
// ---------------------------------------------------------------------

fn rs_sharded_chaos(seed: u64) -> (RunResult, Vec<HistOp>, u64, u64) {
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    // Two 3-replica groups behind a seeded shard map: 6 servers flat.
    let shards = Arc::new(RsShards::new(2, 3, &config, seed));
    let servers = shards.servers();
    let history = Arc::new(Mutex::new(Vec::new()));
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        on_restart: Some({
            let shards = Arc::clone(&shards);
            Arc::new(move |i| {
                shards.amnesia_restart(i);
            })
        }),
        sweep: None,
        integrity: Some(Arc::clone(&integrity)),
        control: None,
        // Flat-index disk faults: server `i` is replica `i % replicas`
        // of group `i / replicas`, same routing as the restart hook.
        disk_tear: Some({
            let shards = Arc::clone(&shards);
            Arc::new(move |i, rng| {
                let reps = shards.replicas();
                shards
                    .group(i / reps)
                    .replica(i % reps)
                    .disk()
                    .tear_tail(rng);
            })
        }),
        disk_rot: Some({
            let shards = Arc::clone(&shards);
            Arc::new(move |i, rng, bits| {
                let reps = shards.replicas();
                shards
                    .group(i / reps)
                    .replica(i % reps)
                    .disk()
                    .rot(rng, bits);
            })
        }),
        durable: Some(Arc::clone(shards.durable_stats())),
    };
    let spec = ChaosSpec {
        servers: 6,
        clients: 6,
        horizon: HORIZON,
        server_crashes: 2,
        amnesia_fraction: 1.0,
        client_crashes: 1,
        partitions: 1,
        drop_prob: 0.01,
        dup_prob: 0.005,
        jitter_ns: 1_000,
        flip_req_prob: 0.01,
        flip_reply_prob: 0.01,
        torn_write_prob: 0.05,
        disk_torn_prob: 0.9,
        disk_rot_events: 2,
        slowdowns: 0,
        slowdown_factor: 0,
        reply_partitions: 0,
        flaps: 0,
        tail: TailPolicy::default(),
    };
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(ChaosRsAdapter::sharded(
                shards
                    .open_clients()
                    .into_iter()
                    .map(|c| c.with_integrity(Arc::clone(&integrity)))
                    .collect(),
                shards.map().clone(),
                i,
                BLOCKS,
                VALUE,
                0.5,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    let h = history.lock().expect("history lock").clone();
    (r, h, shards.rejoins(), shards.resyncs())
}

/// The sharded-topology amnesia gate: a 2-group PRISM-RS cluster takes
/// amnesia crashes (wiped replica memory) on whichever replicas the
/// seeded schedule picks, the flat-index restart hook routes each
/// restart into the right group's rejoin protocol, and the cross-group
/// history must still pass Wing–Gong. This is the cluster layer's
/// failure-semantics proof: routing a block store across shard groups
/// must not weaken any single group's linearizability story.
#[test]
fn rs_sharded_amnesia_chaos_stays_linearizable_and_rejoins() {
    let seed = seed_or(0xC4A0_0004);
    let (r, history, rejoins, resyncs) = rs_sharded_chaos(seed);
    fault_line("rs-sharded", &r);
    assert!(r.tput_ops > 0.0, "no progress under sharded chaos: {r:?}");
    assert!(r.restarts > 0, "no amnesia window fired: {r:?}");
    assert!(
        rejoins > 0 && resyncs > 0,
        "restarted replicas must rejoin via their group's quorum resync \
         (rejoins={rejoins}, resyncs={resyncs})"
    );
    assert!(
        r.replayed > 0,
        "a rejoining replica must fold records back from its local segment log: {r:?}"
    );
    assert!(!history.is_empty(), "history must be recorded");
    check_history(&history).expect("sharded RS history must be linearizable");

    let (r2, history2, rejoins2, resyncs2) = rs_sharded_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(history, history2, "recorded histories must be bit-exact");
    assert_eq!((rejoins, resyncs), (rejoins2, resyncs2));
}

// ---------------------------------------------------------------------
// PRISM-RS live resharding: a 2→4 grow lands mid-chaos
// ---------------------------------------------------------------------

/// Post-run direct reads (control-plane path, epoch-unstamped) used for
/// the lost/duplicate-key audit after a live migration.
fn rs_read_direct(
    shards: &RsShards,
    clients: &[prism_rs::RsClient],
    g: usize,
    b: u64,
) -> RsOutcome {
    let healthy = vec![false; shards.replicas()];
    let (op, step) = clients[g].get(b);
    rs_drive(shards.group(g), &clients[g], op, step, &healthy)
}

#[allow(clippy::type_complexity)]
fn rs_migration_chaos(seed: u64) -> (RunResult, Vec<HistOp>, u64, u64, Option<(u64, u64)>) {
    let config = RsConfig::paper(BLOCKS, VALUE as u64);
    // Four provisioned 3-replica groups, two active: 12 servers flat.
    // Mid-run the control plane grows the map over all four.
    let shards = Arc::new(RsShards::with_active(4, 2, 3, &config, seed));
    let servers = shards.servers();
    let history = Arc::new(Mutex::new(Vec::new()));
    let integrity = Arc::new(IntegrityStats::new());
    // `(new epoch, moved blocks)` once the migration has run.
    let migration: Arc<Mutex<Option<(u64, u64)>>> = Arc::new(Mutex::new(None));
    let hooks = RecoveryHooks {
        on_restart: Some({
            let shards = Arc::clone(&shards);
            Arc::new(move |i| {
                shards.amnesia_restart(i);
            })
        }),
        sweep: None,
        integrity: Some(Arc::clone(&integrity)),
        // Fire the live 2→4 grow mid-measurement: stream moved blocks,
        // fence old owners, flip the epoch, publish the map — atomically
        // at one instant, while amnesia crashes and loss keep firing
        // around it.
        control: Some((SimTime::from_nanos(1_600_000), {
            let shards = Arc::clone(&shards);
            let migration = Arc::clone(&migration);
            Arc::new(move || {
                let (new_map, moved) = shards.migrate_grow(4);
                *migration.lock().expect("migration lock") = Some((new_map.epoch(), moved));
            })
        })),
        // Same flat-index disk faults as the sharded gate. Replay after
        // a post-migration amnesia crash is the regression of record
        // for fence durability: a moved block's tombstone must outlive
        // the restart, or the old group would resurrect it from its log
        // and serve behind the epoch fence.
        disk_tear: Some({
            let shards = Arc::clone(&shards);
            Arc::new(move |i, rng| {
                let reps = shards.replicas();
                shards
                    .group(i / reps)
                    .replica(i % reps)
                    .disk()
                    .tear_tail(rng);
            })
        }),
        disk_rot: Some({
            let shards = Arc::clone(&shards);
            Arc::new(move |i, rng, bits| {
                let reps = shards.replicas();
                shards
                    .group(i / reps)
                    .replica(i % reps)
                    .disk()
                    .rot(rng, bits);
            })
        }),
        durable: Some(Arc::clone(shards.durable_stats())),
    };
    let spec = ChaosSpec {
        servers: 12,
        clients: 6,
        horizon: HORIZON,
        server_crashes: 2,
        amnesia_fraction: 1.0,
        client_crashes: 1,
        partitions: 1,
        drop_prob: 0.01,
        dup_prob: 0.005,
        jitter_ns: 1_000,
        flip_req_prob: 0.01,
        flip_reply_prob: 0.01,
        torn_write_prob: 0.05,
        disk_torn_prob: 0.9,
        disk_rot_events: 2,
        slowdowns: 0,
        slowdown_factor: 0,
        reply_partitions: 0,
        flaps: 0,
        tail: TailPolicy::default(),
    };
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(ChaosRsAdapter::sharded_live(
                shards
                    .open_clients()
                    .into_iter()
                    .map(|c| c.with_integrity(Arc::clone(&integrity)))
                    .collect(),
                shards.map_handle(),
                i,
                BLOCKS,
                VALUE,
                0.5,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    // Lost/duplicate-key audit, folded into the recorded history so the
    // Wing–Gong checker vouches for the final values too. Every block
    // must be readable at its post-migration home (nothing lost), and a
    // moved block's old group must refuse to serve it (no duplicate
    // owner behind the epoch fence).
    let old_map = prism_harness::cluster::ShardMap::new(2, seed);
    let new_map = shards.map();
    let clients = shards.open_clients();
    {
        let mut h = history.lock().expect("history lock");
        for b in 0..BLOCKS {
            let home = new_map.shard_of_id(b);
            match rs_read_direct(&shards, &clients, home, b) {
                RsOutcome::Value(v) => h.push(HistOp {
                    client: 999,
                    key: b,
                    invoke: SimTime::from_nanos(3_000_000 + b),
                    complete: Some(SimTime::from_nanos(3_100_000 + b)),
                    kind: HistKind::Get {
                        nonce: u64::from_le_bytes(v[..8].try_into().expect("8 bytes")),
                    },
                }),
                other => panic!("block {b} lost after migration: {other:?}"),
            }
            let old_home = old_map.shard_of_id(b);
            if old_home != home {
                assert!(
                    !matches!(
                        rs_read_direct(&shards, &clients, old_home, b),
                        RsOutcome::Value(_)
                    ),
                    "moved block {b} still served by its fenced old group {old_home}"
                );
            }
        }
    }
    let h = history.lock().expect("history lock").clone();
    let m = *migration.lock().expect("migration lock");
    (r, h, shards.rejoins(), shards.resyncs(), m)
}

/// The tentpole gate: linearizability through a live 2→4 reshard. Mid-
/// run, the control plane streams moved blocks to their new home
/// groups, fences the old owners, and flips the epoch; servers NACK
/// stale-routed requests, clients refetch the map and reroute their
/// in-flight machines; amnesia crashes and loss keep firing throughout.
/// The gate demands that the epoch fence visibly fired, that the
/// cross-epoch history (final values included) passes Wing–Gong, that
/// no block was lost or kept a duplicate owner, and that the same seed
/// replays bit-exactly.
#[test]
fn rs_migration_chaos_stays_linearizable_through_live_reshard() {
    let seed = seed_or(0xC4A0_0006);
    let (r, history, rejoins, resyncs, migration) = rs_migration_chaos(seed);
    fault_line("rs-migration", &r);
    let (epoch, moved) = migration.expect("the control-plane migration must have run");
    println!(
        "rs-migration: epoch={epoch} moved={moved} epoch_fenced={}",
        r.epoch_fenced
    );
    assert!(r.tput_ops > 0.0, "no progress under migration chaos: {r:?}");
    assert_eq!(epoch, 2, "one grow bumps the seed map's epoch 1 → 2");
    assert!(moved > 0, "a 2→4 grow over {BLOCKS} blocks must move some");
    assert!(
        r.epoch_fenced > 0,
        "stale-routed requests must be fenced by the epoch check: {r:?}"
    );
    assert!(r.restarts > 0, "no amnesia window fired: {r:?}");
    // Resyncs are seed-dependent here: with twelve servers the crash
    // schedule may land on standby-group replicas holding no written
    // blocks, which rejoin without copying anything. Rejoining itself
    // is mandatory; the resync count only has to replay bit-exactly.
    assert!(
        rejoins > 0,
        "restarted replicas must rejoin (rejoins={rejoins})"
    );
    assert!(!history.is_empty(), "history must be recorded");
    check_history(&history).expect("history must stay linearizable through the live reshard");

    let (r2, history2, rejoins2, resyncs2, migration2) = rs_migration_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(history, history2, "recorded histories must be bit-exact");
    assert_eq!((rejoins, resyncs), (rejoins2, resyncs2));
    assert_eq!(migration, migration2);
}

// ---------------------------------------------------------------------
// PRISM-KV: recover crashes, client crashes, partitions
// ---------------------------------------------------------------------

fn kv_chaos(seed: u64) -> (RunResult, Vec<HistOp>) {
    // No extra buffer headroom: a reply lost on the return leg is
    // harvested for its orphaned allocation when it straggles in
    // (`on_stale_reply`), so lost replies no longer leak buffers.
    let config = PrismKvConfig::paper(BLOCKS, VALUE);
    let server = Arc::new(PrismKvServer::new(&config));
    let servers = vec![Arc::clone(server.server())];
    let history = Arc::new(Mutex::new(Vec::new()));
    let integrity = Arc::new(IntegrityStats::new());
    // Amnesia is now survivable for single-copy KV: every acknowledged
    // write sat behind a synced segment append (the durable tap runs
    // inside the execute path, before the ack), so a wiped server
    // replays its own log instead of needing peers. Clients observe the
    // bumped rkey incarnation, refence, and retry. Crash-window disk
    // tears are provably harmless here — nothing unsynced exists to
    // tear — which the gate asserts via `segments_truncated == 0`.
    let hooks = RecoveryHooks {
        on_restart: Some({
            let server = Arc::clone(&server);
            Arc::new(move |_i| {
                server.amnesia_restart();
            })
        }),
        disk_tear: Some({
            let server = Arc::clone(&server);
            Arc::new(move |_i, rng| {
                server.disk().tear_tail(rng);
            })
        }),
        durable: Some(Arc::clone(server.durable_stats())),
        integrity: Some(Arc::clone(&integrity)),
        ..RecoveryHooks::default()
    };
    // No at-rest rot: a single-copy store has no replica to heal a
    // rotted acknowledged record from, so that fault class belongs to
    // RS (see the gates above). Tears are fair game — see the hook.
    let spec = ChaosSpec {
        servers: 1,
        clients: 4,
        horizon: HORIZON,
        server_crashes: 1,
        amnesia_fraction: 1.0,
        client_crashes: 1,
        partitions: 1,
        drop_prob: 0.01,
        dup_prob: 0.005,
        jitter_ns: 1_000,
        flip_req_prob: 0.01,
        flip_reply_prob: 0.01,
        torn_write_prob: 0.05,
        disk_torn_prob: 0.9,
        disk_rot_events: 0,
        slowdowns: 0,
        slowdown_factor: 0,
        reply_partitions: 0,
        flaps: 0,
        tail: TailPolicy::default(),
    };
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(ChaosKvAdapter::new(
                server.open_client().with_integrity(Arc::clone(&integrity)),
                i,
                BLOCKS,
                VALUE,
                0.5,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    let h = history.lock().expect("history lock").clone();
    (r, h)
}

#[test]
fn kv_chaos_stays_linearizable_per_key() {
    let seed = seed_or(0xC4A0_0002);
    let (r, history) = kv_chaos(seed);
    fault_line("kv", &r);
    assert!(r.tput_ops > 0.0, "no progress under chaos: {r:?}");
    assert!(r.crash_drops > 0, "the crash window never bit: {r:?}");
    assert!(r.restarts > 0, "no amnesia window fired: {r:?}");
    assert!(
        r.replayed > 0,
        "the wiped server must rebuild its table from the segment log: {r:?}"
    );
    assert_eq!(
        r.segments_truncated, 0,
        "KV syncs every acknowledged append, so crash-window tears must \
         find nothing to cut: {r:?}"
    );
    assert!(!history.is_empty(), "history must be recorded");
    assert!(
        r.corruptions_injected > 0,
        "corruption modes were enabled but never fired: {r:?}"
    );
    assert!(
        r.corruptions_detected > 0,
        "injected bit flips must be detected by the frame CRCs: {r:?}"
    );
    check_history(&history).expect("KV history must be linearizable per key");

    let (r2, history2) = kv_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(history, history2, "recorded histories must be bit-exact");
}

// ---------------------------------------------------------------------
// PRISM-KV sharded: recover crashes across a 2-shard cluster
// ---------------------------------------------------------------------

fn kv_sharded_chaos(seed: u64) -> (RunResult, Vec<HistOp>) {
    let config = PrismKvConfig::paper(BLOCKS, VALUE);
    let cluster = Arc::new(KvCluster::new(2, &config, seed));
    let servers = cluster.servers();
    let history = Arc::new(Mutex::new(Vec::new()));
    let integrity = Arc::new(IntegrityStats::new());
    // Amnesia crashes land on whichever shard the schedule picks; each
    // wiped shard replays its own segment log (single-copy KV needs no
    // peers — acknowledged writes are write-through to the synced log),
    // and routed clients refence against the bumped incarnation.
    let hooks = RecoveryHooks {
        on_restart: Some({
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i| {
                cluster.amnesia_restart(i);
            })
        }),
        disk_tear: Some({
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i, rng| {
                cluster.shard(i).disk().tear_tail(rng);
            })
        }),
        durable: Some(Arc::clone(cluster.durable_stats())),
        integrity: Some(Arc::clone(&integrity)),
        ..RecoveryHooks::default()
    };
    let spec = ChaosSpec {
        servers: 2,
        clients: 4,
        horizon: HORIZON,
        server_crashes: 1,
        amnesia_fraction: 1.0,
        client_crashes: 1,
        partitions: 1,
        drop_prob: 0.01,
        dup_prob: 0.005,
        jitter_ns: 1_000,
        flip_req_prob: 0.01,
        flip_reply_prob: 0.01,
        torn_write_prob: 0.05,
        disk_torn_prob: 0.9,
        disk_rot_events: 0,
        slowdowns: 0,
        slowdown_factor: 0,
        reply_partitions: 0,
        flaps: 0,
        tail: TailPolicy::default(),
    };
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(ChaosKvAdapter::sharded(
                (0..2)
                    .map(|s| {
                        cluster
                            .shard(s)
                            .open_client()
                            .with_integrity(Arc::clone(&integrity))
                    })
                    .collect(),
                cluster.map().clone(),
                i,
                BLOCKS,
                VALUE,
                0.5,
                Arc::clone(&history),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    let h = history.lock().expect("history lock").clone();
    (r, h)
}

/// Per-key linearizability must survive sharding: operations route to
/// each key's home shard while one shard takes a recover crash and the
/// transport flips bits. A routing bug that sent a key's PUT and a
/// later GET to different shards would surface here as a stale read.
#[test]
fn kv_sharded_chaos_stays_linearizable_per_key() {
    let seed = seed_or(0xC4A0_0005);
    let (r, history) = kv_sharded_chaos(seed);
    fault_line("kv-sharded", &r);
    assert!(r.tput_ops > 0.0, "no progress under sharded chaos: {r:?}");
    assert!(r.crash_drops > 0, "the crash window never bit: {r:?}");
    assert!(r.restarts > 0, "no amnesia window fired: {r:?}");
    assert!(
        r.replayed > 0,
        "a wiped shard must rebuild its table from the segment log: {r:?}"
    );
    assert_eq!(
        r.segments_truncated, 0,
        "KV syncs every acknowledged append, so crash-window tears must \
         find nothing to cut: {r:?}"
    );
    assert!(!history.is_empty(), "history must be recorded");
    check_history(&history).expect("sharded KV history must be linearizable per key");

    let (r2, history2) = kv_sharded_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(history, history2, "recorded histories must be bit-exact");
}

// ---------------------------------------------------------------------
// PRISM-TX: client crashes with cooperative-termination reclamation
// ---------------------------------------------------------------------

fn tx_chaos(seed: u64) -> (RunResult, u64, u64) {
    let mut config = TxConfig::paper(64, VALUE as u64);
    // Unlike the KV/RS gates (whose lost-reply leaks are now harvested
    // via `on_stale_reply`), TX headroom here covers buffers held by
    // *dangling prepares* of crashed clients — live protocol state
    // until the cooperative-termination sweep reclaims it, not a leak.
    config.spare_buffers += 8_192;
    let cluster = Arc::new(TxCluster::new(1, &config));
    let servers = vec![Arc::clone(cluster.shard(0).server())];
    let integrity = Arc::new(IntegrityStats::new());
    let hooks = RecoveryHooks {
        on_restart: None,
        sweep: Some((SimDuration::micros(150), {
            let cluster = Arc::clone(&cluster);
            Arc::new(move |i| {
                cluster.sweep_shard(i);
            })
        })),
        integrity: Some(Arc::clone(&integrity)),
        control: None,
        ..RecoveryHooks::default()
    };
    // No server crash windows, so torn writes cannot be scheduled here;
    // both frame legs still see flips. TX keeps no durable tier yet, so
    // both disk fault classes stay off.
    let spec = ChaosSpec {
        servers: 1,
        clients: 6,
        horizon: HORIZON,
        server_crashes: 0,
        amnesia_fraction: 0.0,
        client_crashes: 3,
        partitions: 1,
        drop_prob: 0.01,
        dup_prob: 0.0,
        jitter_ns: 1_000,
        flip_req_prob: 0.01,
        flip_reply_prob: 0.01,
        torn_write_prob: 0.0,
        disk_torn_prob: 0.0,
        disk_rot_events: 0,
        slowdowns: 0,
        slowdown_factor: 0,
        reply_partitions: 0,
        flaps: 0,
        tail: TailPolicy::default(),
    };
    let mut plan = FaultPlan::chaos(seed, &spec);
    plan.timeout = SimDuration::micros(60);
    let r = run_closed_loop_with(
        &servers,
        &CostModel::testbed(),
        VerbPath::Nic,
        spec.clients,
        &mut |i| {
            Box::new(PrismTxAdapter::new(
                cluster.open_client().with_integrity(Arc::clone(&integrity)),
                TxnGen::new(
                    KeyDist::uniform(64),
                    2,
                    VALUE,
                    SimRng::new(seed ^ ((i as u64 + 1) * 31)),
                ),
            ))
        },
        WARMUP,
        MEASURE,
        seed,
        &plan,
        &hooks,
    );
    // The run freezes with closed-loop operations mid-flight; two more
    // lease intervals of sweeping reclaim whatever they left prepared,
    // exactly as a live deployment's periodic sweep would.
    cluster.sweep_shard(0);
    cluster.sweep_shard(0);
    (r, cluster.reclaims(), cluster.stuck_keys())
}

#[test]
fn tx_client_crash_chaos_reclaims_every_dangling_prepare() {
    let seed = seed_or(0xC4A0_0003);
    let (r, reclaims, stuck) = tx_chaos(seed);
    fault_line("tx", &r);
    assert!(r.tput_ops > 0.0, "no progress under chaos: {r:?}");
    assert!(r.client_restarts > 0, "no client crash fired: {r:?}");
    assert!(
        reclaims > 0,
        "crashed clients' dangling prepares must be reclaimed (reclaims={reclaims})"
    );
    assert!(
        r.corruptions_injected > 0 && r.corruptions_detected > 0,
        "corruption modes were enabled but never fired or went undetected: {r:?}"
    );
    assert_eq!(stuck, 0, "no key may stay stuck after the final sweeps");

    let (r2, _, stuck2) = tx_chaos(seed);
    assert_eq!(
        metrics_key(&r),
        metrics_key(&r2),
        "replay must be bit-exact"
    );
    assert_eq!(stuck2, 0);
}
