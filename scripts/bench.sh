#!/usr/bin/env bash
# Runs the in-repo benchmark suite and collects machine-readable output.
#
#   scripts/bench.sh [out.jsonl]
#
# Each bench binary prints human-readable ns/iter lines; with
# PRISM_BENCH_JSON set (as this script does) the runner also appends one
# JSON line per bench: {"bench": "<group/name>", "ns_per_iter": <f64>}.
# PRISM_BENCH_MS bounds per-bench measurement time (default here 200 ms
# for stable numbers; CI smoke uses 50 ms).
#
# results/BENCH_02.json was assembled from two such runs — one at the
# pre-fast-path commit, one after — joined per bench name.
#
# results/BENCH_03.json (open-loop engine + event core) draws its
# wheel-vs-heap numbers from the des/64k_events_16k_timers_{wheel,heap}
# pair in one run of this script (both queue kinds are benched on the
# same commit), its wire numbers from the wire/chain4_* benches, and
# its latency-under-load curves from
# `cargo run --release -p prism-harness --bin fig_openloop [--million]`.
#
# results/BENCH_04.json (sharded scale-out, PR 7) draws its shard-count
# scaling curve (1/2/4/8 shards, aggregate Mops + CO-free tails) from
# `cargo run --release -p prism-harness --bin fig_openloop -- --scaling`
# and its satellite before/after numbers (memory/crc32_512,
# wire/decode_3op_chain, primitive/enhanced_cas_16 and
# allocate_free_512) from two runs of this script joined per bench name.
#
# results/BENCH_06.json (gray-failure tolerance, hedged tails) draws
# its hedged-vs-unhedged curves from `cargo run --release -p
# prism-harness --bin fig_hedge` (straggler factors 1/2/4/8, same-seed
# policy on/off pairs) and its overload row from the gray_gate knee
# test's printed counters. The quick smoke below keeps that figure
# runnable: it must finish, hedge at least once, and beat the unhedged
# p99 at the 4x severity.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-results/bench_latest.jsonl}"
mkdir -p "$(dirname "$OUT")"
rm -f "$OUT"

echo "== bench (PRISM_BENCH_MS=${PRISM_BENCH_MS:-200}, JSON -> $OUT) =="
PRISM_BENCH_MS="${PRISM_BENCH_MS:-200}" PRISM_BENCH_JSON="$OUT" \
    cargo bench -q --offline -p prism-bench

echo "== hedging smoke (fig_hedge --quick: hedged p99 < unhedged at 4x) =="
cargo run -q --release --offline -p prism-harness --bin fig_hedge -- --quick \
    | tee -a /dev/stderr \
    | awk '
        /^hedge factor=4 mode=unhedged/ { for (i=1;i<=NF;i++) if ($i ~ /^p99_us=/) { sub("p99_us=","",$i); un=$i } }
        /^hedge factor=4 mode=hedged/   { for (i=1;i<=NF;i++) { if ($i ~ /^p99_us=/) { sub("p99_us=","",$i); he=$i }
                                                                if ($i ~ /^hedges=/) { sub("hedges=","",$i); n=$i } } }
        END {
            if (un == "" || he == "") { print "hedging smoke: missing curve points" > "/dev/stderr"; exit 1 }
            if (n + 0 == 0)           { print "hedging smoke: no hedge ever fired" > "/dev/stderr"; exit 1 }
            if (he + 0 >= un + 0)     { printf "hedging smoke: hedged p99 %s did not beat unhedged %s\n", he, un > "/dev/stderr"; exit 1 }
            printf "hedging smoke: ok (4x straggler: hedged p99 %sus < unhedged %sus, %s hedges)\n", he, un, n
        }'

echo "bench.sh: wrote $(wc -l < "$OUT") results to $OUT"
