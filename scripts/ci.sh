#!/usr/bin/env bash
# The repo's verify command: everything CI (and a reviewer) needs to
# trust a change, runnable from a clean checkout with no network.
#
#   scripts/ci.sh
#
# Steps:
#   1. hermeticity check  — all deps are path-only (scripts/check_hermetic.sh)
#   2. offline release build
#   3. offline test run   — unit, integration, and property suites
#   4. fault-matrix smoke — KV/RS/TX under loss-only, crash-only, and
#                           loss+crash fault plans: progress, no panics
#   5. chaos gate         — fixed-seed chaos schedules (amnesia/client
#                           crashes, partitions, loss), on single-server
#                           and sharded topologies: linearizable
#                           histories, recovery protocols fired, replay
#                           bit-exact
#   5b. migration gate    — live 2→4 reshard fired mid-chaos-run by a
#                           control event: linearizable through the
#                           move, zero lost / duplicate blocks, replay
#                           bit-exact (run explicitly so a filter change
#                           in the chaos suite can't silently drop it)
#   6. corruption matrix  — seeded bit flips, torn writes, and at-rest
#                           rot: every injected fault detected or
#                           repaired, counter conservation holds, and a
#                           no-corruption plan stays bit-identical
#   6b. durability gate   — segment-log recovery economics: intact-log
#                           delta resync strictly below wiped-disk full
#                           resync, torn tails truncated and healed,
#                           rotted frames never served, KV write-ahead
#                           tears provably empty; plus the segment
#                           format fuzz (mutated/truncated frames decode
#                           to typed errors, never panic or pass)
#   7. open-loop smoke    — coordinated-omission regression (stalled
#                           server: open-loop p99 >> closed-loop p99),
#                           bit-exact open-loop sweep replay, and a
#                           bit-exact 4-shard sharded sweep replay
#                           (cluster routing + cross-shard doorbells)
#   7b. gray gate         — gray failures (stragglers, reply-leg
#                           partitions, flapping links) vs the
#                           tail-tolerance stack: linearizable hedged
#                           and unhedged, hedged p99 bounded under one
#                           straggling shard, goodput held at 2x past
#                           the knee, zero-knob plans bit-identical to
#                           the pre-gray golden schedule
#   8. second-seed pass   — fault matrix + chaos gate (incl. migration
#                           gate) + corruption matrix + durability gate
#                           + store properties + open-loop smoke + gray
#                           gate again under a different
#                           PRISM_TEST_SEED, so the gates don't ossify
#                           around one lucky schedule
#   9. bench smoke        — substrate benches at 50 ms/bench, so a perf
#                           regression that breaks the bench harness (or
#                           an arena change that deadlocks it) fails CI
#  10. cargo fmt --check  — skipped with a notice if rustfmt is absent
#  11. cargo clippy       — -D warnings; skipped with a notice if
#                           clippy is not installed
#
# The property suites print a PRISM_TEST_SEED on failure; re-run the
# named test with that env var to reproduce the exact failing input.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== hermeticity =="
./scripts/check_hermetic.sh

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== fault-matrix smoke (loss / crash / loss+crash) =="
cargo test -q --offline -p prism-harness --test fault_matrix

echo "== chaos gate (fixed-seed linearizability under amnesia) =="
cargo test -q --offline -p prism-harness --test chaos_gate

echo "== migration gate (live 2->4 reshard under chaos) =="
cargo test -q --offline -p prism-harness --test chaos_gate \
    rs_migration_chaos_stays_linearizable_through_live_reshard

echo "== corruption matrix (bit flips / torn writes / rot) =="
cargo test -q --offline -p prism-harness --test corruption_matrix

echo "== durability gate (segment replay vs delta resync) =="
cargo test -q --offline -p prism-harness --test durability_gate \
    --test store_properties

echo "== open-loop smoke (CO regression + bit-exact replay) =="
cargo test -q --offline -p prism-harness --test openloop_smoke

echo "== gray gate (stragglers / hedging / shedding / zero-knob identity) =="
cargo test -q --offline -p prism-harness --test gray_gate

echo "== second-seed pass (fault matrix + chaos gate + corruption matrix + durability gate + store properties + open-loop smoke + gray gate) =="
PRISM_TEST_SEED=1806242025 cargo test -q --offline -p prism-harness \
    --test fault_matrix --test chaos_gate --test corruption_matrix \
    --test durability_gate --test store_properties \
    --test openloop_smoke --test gray_gate

echo "== migration gate, second seed =="
PRISM_TEST_SEED=1806242025 cargo test -q --offline -p prism-harness \
    --test chaos_gate \
    rs_migration_chaos_stays_linearizable_through_live_reshard

echo "== bench smoke (substrate, 50 ms/bench) =="
PRISM_BENCH_MS=50 cargo bench -q --offline -p prism-bench --bench substrate

if command -v rustfmt >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --check
else
    echo "== fmt skipped (rustfmt not installed) =="
fi

if command -v cargo-clippy >/dev/null 2>&1; then
    echo "== clippy (-D warnings) =="
    cargo clippy -q --offline --all-targets -- -D warnings
else
    echo "== clippy skipped (clippy not installed) =="
fi

echo "ci.sh: all checks passed"
