#!/usr/bin/env bash
# Hermeticity check: every dependency in every workspace manifest must
# be a path dependency (or `workspace = true`, which resolves through
# the path-only [workspace.dependencies] table). Registry or git deps
# break `cargo build --offline` — the repo's only supported build.
#
# Mirrored by the Rust test tests/hermeticity.rs (run via prism-harness)
# so CI catches violations even when this script isn't invoked.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Within dependency sections, flag lines that request a version,
    # git, or registry source without a path and without deferring to
    # the workspace table.
    bad=$(awk '
        /^\[/ { indep = ($0 ~ /dependencies/) }
        indep && !/^\[/ {
            line = $0
            sub(/#.*/, "", line)
            if (line ~ /=/ && line !~ /path/ && line !~ /workspace[ ]*=[ ]*true/ \
                && (line ~ /version/ || line ~ /git[ ]*=/ || line ~ /registry/ \
                    || line ~ /=[ ]*"[^"]*"[ ]*$/))
                print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "$bad"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "error: non-path dependencies found; the workspace must build with 'cargo build --offline'" >&2
    exit 1
fi
echo "hermeticity check passed: all dependencies are path-only"
